"""Unified operational log: the runtime's *other* plane.

The deterministic stage-event stream (:mod:`repro.obs.events`) is the
runtime's ground truth -- bit-identical across execution backends, golden
in CI.  Everything that must *never* appear there (host timings, worker
pids, kill/respawn accidents, shm segment churn) previously had no home
or grew ad-hoc writers; the supervisor's ``REPRO_SUPERVISE_LOG`` JSONL
existed twice with drifting shapes.

:class:`OpLog` is the single process-wide operational logger.  Every
record is one JSON line::

    {"ts": <unix seconds>, "t": <seconds since process log start>,
     "component": "supervise" | "engine" | "backend.shm" | "shm.arena"
                  | "faults" | ...,
     "severity": "info" | "warn" | "error",
     "event": "worker-died" | "run-begin" | ...,
     ...event-specific fields...}

Design constraints, in order:

* **never perturb the run** -- a failed write is swallowed; when no path
  is configured and no tap is registered, ``log()`` is a few dict lookups;
* **per-call path resolution** -- tests (and the chaos CI job) point
  ``REPRO_OPLOG`` at per-run files via environment patching, so the path
  is re-read from the environment on every record rather than cached at
  import;
* **append-only with rotation** -- records append so concurrent runs can
  share one file; when the file exceeds ``REPRO_OPLOG_MAX_BYTES``
  (default 16 MiB) it is renamed to ``<path>.1`` and a fresh file starts;
* **taps** -- in-process consumers (the crash flight recorder, the
  ``repro top`` status stream) subscribe with :meth:`add_tap` and see
  every record whether or not a file path is configured.

``REPRO_SUPERVISE_LOG`` is kept as a deprecated alias for ``REPRO_OPLOG``
(the supervisor's records keep their historical field names on top of the
common envelope); the first record written through the alias is preceded
by a one-time ``deprecated-env-alias`` warning record.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable

ENV_PATH = "REPRO_OPLOG"
#: Deprecated alias (PR 6's supervisor log); honoured when ENV_PATH is unset.
ENV_ALIAS = "REPRO_SUPERVISE_LOG"
ENV_MAX_BYTES = "REPRO_OPLOG_MAX_BYTES"
DEFAULT_MAX_BYTES = 16 << 20

_UNSET = object()


class OpLog:
    """Process-wide structured JSONL operational logger.

    Thread-safe: the supervisor, the resource sampler thread and the
    engine all log concurrently.  Use the module-level :func:`get_oplog`
    singleton; constructing private instances is for tests.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._taps: list[Callable[[dict], None]] = []
        self._path_override: object = _UNSET
        self._max_override: object = _UNSET
        self._warned_alias = False
        self._t0 = time.monotonic()

    # -- configuration -----------------------------------------------------------

    def configure(
        self, path: str | None = None, max_bytes: int | None = None
    ) -> None:
        """Pin the log path/rotation size, overriding the environment.

        ``configure()`` with no arguments reverts to environment
        resolution (``REPRO_OPLOG``, then the ``REPRO_SUPERVISE_LOG``
        alias).  ``configure(path=None)`` explicitly also reverts --
        embedders that want a hard "no file" should simply not set the
        environment variables.
        """
        self._path_override = _UNSET if path is None else path
        self._max_override = _UNSET if max_bytes is None else int(max_bytes)

    def _resolve_path(self) -> tuple[str | None, bool]:
        """Current target path and whether it came from the deprecated
        alias."""
        if self._path_override is not _UNSET:
            return self._path_override, False  # type: ignore[return-value]
        path = os.environ.get(ENV_PATH)
        if path:
            return path, False
        alias = os.environ.get(ENV_ALIAS)
        return (alias, True) if alias else (None, False)

    def _max_bytes(self) -> int:
        if self._max_override is not _UNSET:
            return self._max_override  # type: ignore[return-value]
        try:
            return int(os.environ.get(ENV_MAX_BYTES, DEFAULT_MAX_BYTES))
        except ValueError:
            return DEFAULT_MAX_BYTES

    # -- taps --------------------------------------------------------------------

    def add_tap(self, tap: Callable[[dict], None]) -> None:
        """Subscribe an in-process consumer to every record."""
        with self._lock:
            self._taps.append(tap)

    def remove_tap(self, tap: Callable[[dict], None]) -> None:
        with self._lock:
            try:
                self._taps.remove(tap)
            except ValueError:
                pass

    # -- logging -----------------------------------------------------------------

    def log(
        self, component: str, event: str, *, severity: str = "info", **fields
    ) -> dict:
        """Emit one record to the taps and (when configured) the file.

        Caller-supplied ``fields`` win over the envelope defaults, so the
        supervisor can keep its historical run-relative ``t``.  Returns
        the record (tests inspect it); never raises.
        """
        record = {
            "ts": round(time.time(), 6),
            "t": round(time.monotonic() - self._t0, 6),
            "component": component,
            "severity": severity,
            "event": event,
        }
        record.update(fields)
        with self._lock:
            taps = list(self._taps)
        for tap in taps:
            try:
                tap(record)
            except Exception:  # pragma: no cover - taps must not kill runs
                pass
        path, from_alias = self._resolve_path()
        if path:
            self._write(path, record, from_alias)
        return record

    def _write(self, path: str, record: dict, from_alias: bool) -> None:
        with self._lock:
            lines = []
            if from_alias and not self._warned_alias:
                self._warned_alias = True
                lines.append({
                    "ts": record["ts"], "t": record["t"],
                    "component": "oplog", "severity": "warn",
                    "event": "deprecated-env-alias",
                    "alias": ENV_ALIAS, "use": ENV_PATH,
                })
            lines.append(record)
            try:
                self._rotate(path)
                with open(path, "a", encoding="utf-8") as fh:
                    for line in lines:
                        fh.write(json.dumps(line, default=str) + "\n")
            except OSError:  # pragma: no cover - log must never kill the run
                pass

    def _rotate(self, path: str) -> None:
        try:
            size = os.path.getsize(path)
        except OSError:
            return
        if size >= self._max_bytes():
            os.replace(path, path + ".1")


_OPLOG = OpLog()


def get_oplog() -> OpLog:
    """The process-wide operational logger."""
    return _OPLOG
