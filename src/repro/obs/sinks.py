"""Event sinks: subscribers to the engine's stage-event stream.

A sink is anything with ``emit(event)`` (and optionally ``close()``).  The
engine fans every event out through an :class:`EventBus`; the bundled
sinks cover the three consumers the runtime itself needs:

* :class:`JsonlTraceSink` -- one JSON object per line, the on-disk trace
  format (``--trace`` / ``RuntimeConfig.trace_path``);
* :class:`CliProgressSink` -- live one-line-per-stage progress for the CLI;
* :class:`AggregatingSink` -- folds the stream back into the
  ``stages``/fault-accounting fields of a
  :class:`~repro.core.results.RunResult`.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Protocol, runtime_checkable

from repro.core.results import StageResult
from repro.obs.events import StageEvent


@runtime_checkable
class EventSink(Protocol):
    """Anything that can receive engine events."""

    def emit(self, event: StageEvent) -> None: ...


class EventBus:
    """Fan one event stream out to every subscribed sink."""

    def __init__(self, sinks: Iterable[EventSink] = ()) -> None:
        self.sinks: list[EventSink] = list(sinks)

    def subscribe(self, sink: EventSink) -> None:
        self.sinks.append(sink)

    def emit(self, event: StageEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class RecordingSink:
    """Keep every event in memory (tests, programmatic consumers)."""

    def __init__(self) -> None:
        self.events: list[StageEvent] = []

    def emit(self, event: StageEvent) -> None:
        self.events.append(event)


class JsonlTraceSink:
    """Write each event as one JSON line.

    Accepts a path (opened and owned by the sink) or an open text stream
    (borrowed; ``close`` flushes but does not close it).
    """

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._fh = target
            self._owned = False

    def emit(self, event: StageEvent) -> None:
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owned:
            self._fh.close()


class CliProgressSink:
    """Human-oriented live narration: one line per stage, plus a summary."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream

    def _print(self, text: str) -> None:
        self._stream.write(text + "\n")

    def emit(self, event: StageEvent) -> None:
        kind = event.kind
        if kind == "run_begin":
            self._print(
                f"[{event.loop}] {event.strategy} on p={event.n_procs}: "
                f"{event.n_iterations} iterations"
            )
        elif kind == "fault_injected":
            self._print(
                f"  stage {event.stage}: {event.fault} fault on p{event.proc}"
            )
        elif kind == "retry":
            self._print(
                f"  stage {event.stage}: zero-commit retry (streak {event.streak})"
            )
        elif kind == "stage_end":
            r: StageResult = event.result
            verdict = "fail" if r.failed else "ok"
            self._print(
                f"  stage {r.index}: {verdict:4s} committed {r.committed_iterations:5d} "
                f"remaining {r.remaining_after:5d} span {r.span:.1f}"
            )
        elif kind == "run_end":
            # A zero-time run (e.g. a zero-iteration loop) has no defined
            # speedup; "1.00x" would misread as a measurement.
            speedup = (
                f"{event.sequential_work / event.total_time:.2f}x"
                if event.total_time > 0 else "n/a"
            )
            self._print(
                f"[{event.loop}] done: {event.stages} stages, "
                f"{event.restarts} restarts, speedup {speedup}"
            )


class AggregatingSink:
    """Fold the event stream into result-shaped aggregates.

    The engine builds its :class:`~repro.core.results.RunResult` from this
    sink's ``stages`` list, so the one event stream is the single source of
    per-stage truth -- result scraping and tracing can never disagree.
    """

    def __init__(self) -> None:
        self.stages: list[StageResult] = []
        self.faults: list[tuple[int, int, str]] = []
        self.retry_stages: list[int] = []
        self.exit_iteration: int | None = None

    def emit(self, event: StageEvent) -> None:
        kind = event.kind
        if kind == "stage_end":
            self.stages.append(event.result)
        elif kind == "fault_injected":
            self.faults.append((event.stage, event.proc, event.fault))
        elif kind == "retry":
            self.retry_stages.append(event.stage)
        elif kind == "run_end":
            self.exit_iteration = event.exit_iteration
