"""Crash flight recorder: bounded rings dumped as a crash bundle.

When an engine run dies of an *uncaught* failure -- a speculation bug, a
wedged thread pool, an un-degradable backend -- the post-mortem evidence
is usually gone with the process: the trace sink flushed what it could,
but the operational context (which workers existed, what the supervisor
did last, how much memory the run held) was never on disk at all.

:class:`FlightRecorder` keeps that context in memory, cheaply, for every
run: three bounded ring buffers of

* the most recent deterministic stage events (as their JSONL dicts),
* the most recent oplog records (it registers as an oplog tap),
* the last host resource samples (as a sampler consumer).

On failure the engine calls :func:`dump_bundle`, which writes a
self-contained crash bundle directory::

    <crash_dir>/crash-<utc timestamp>-pid<pid>/
        manifest.json     error, backend state, counts, host facts
        config.json       the run's RuntimeConfig fields
        env.json          REPRO_* environment at crash time
        trace_tail.jsonl  ring of deterministic events
        oplog_tail.jsonl  ring of operational records
        resources.jsonl   ring of resource samples

``repro report --bundle PATH`` (:func:`render_bundle`) renders a bundle
back into tables.  Bundles are only written when a crash directory is
configured (``RuntimeConfig.crash_dir`` or ``REPRO_CRASH_DIR``) -- an
ordinary failing test run should not litter the tree.
"""

from __future__ import annotations

import json
import os
import platform
import time
import traceback
from collections import deque

from repro.util.tables import format_table

ENV_CRASH_DIR = "REPRO_CRASH_DIR"

#: Resource samples kept regardless of the event-ring capacity: they are
#: periodic, so a short ring still spans the recent past.
_RESOURCE_RING = 64


class FlightRecorder:
    """Bounded in-memory rings of recent run activity.

    Subscribes to all three streams of one engine run: it is an event
    sink (``emit``), an oplog tap (``note_oplog``) and a resource-sampler
    consumer (``note_resources``).  ``capacity`` bounds the event and
    oplog rings (``RuntimeConfig.flight_events``).
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(1, int(capacity))
        self.events: deque = deque(maxlen=self.capacity)
        self.oplog_records: deque = deque(maxlen=self.capacity)
        self.resource_samples: deque = deque(maxlen=_RESOURCE_RING)

    # -- stream subscriptions ----------------------------------------------------

    def emit(self, event) -> None:
        try:
            self.events.append(event.to_dict())
        except Exception:  # pragma: no cover - recorder must never raise
            pass

    def note_oplog(self, record: dict) -> None:
        self.oplog_records.append(record)

    def note_resources(self, sample: dict) -> None:
        self.resource_samples.append(sample)

    def close(self) -> None:
        """Event-sink protocol; rings stay readable after the bus closes."""

    def snapshot(self) -> dict:
        return {
            "events": list(self.events),
            "oplog": list(self.oplog_records),
            "resources": list(self.resource_samples),
        }


def resolve_crash_dir(config) -> str | None:
    """Where crash bundles go for a run under ``config`` (``None`` = off)."""
    explicit = getattr(config, "crash_dir", None)
    return explicit or os.environ.get(ENV_CRASH_DIR) or None


def _config_fields(config) -> dict:
    import dataclasses

    try:
        return {
            f.name: getattr(config, f.name)
            for f in dataclasses.fields(config)
        }
    except TypeError:
        return {"repr": repr(config)}


def _write_jsonl(path: str, records) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, default=str) + "\n")


def dump_bundle(
    recorder: FlightRecorder,
    crash_dir: str,
    *,
    error: BaseException | None = None,
    config=None,
    state: dict | None = None,
) -> str:
    """Write one crash bundle directory; return its path.

    ``state`` is the engine's operational snapshot (backend name,
    supervision counters, commit point).  Never raises -- a failing dump
    must not mask the original error -- but returns ``""`` when nothing
    could be written.
    """
    try:
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        base = os.path.join(crash_dir, f"crash-{stamp}-pid{os.getpid()}")
        path = base
        suffix = 0
        while os.path.exists(path):
            suffix += 1
            path = f"{base}-{suffix}"
        os.makedirs(path)
        manifest = {
            "created": round(time.time(), 6),
            "pid": os.getpid(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "error": {
                "type": type(error).__name__,
                "message": str(error),
                "traceback": "".join(traceback.format_exception(error)),
            } if error is not None else None,
            "state": state or {},
            "counts": {
                "events": len(recorder.events),
                "oplog": len(recorder.oplog_records),
                "resources": len(recorder.resource_samples),
            },
        }
        with open(os.path.join(path, "manifest.json"), "w") as fh:
            json.dump(manifest, fh, indent=2, default=str)
        if config is not None:
            with open(os.path.join(path, "config.json"), "w") as fh:
                json.dump(_config_fields(config), fh, indent=2, default=str)
        env = {
            key: value for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        }
        with open(os.path.join(path, "env.json"), "w") as fh:
            json.dump(env, fh, indent=2)
        _write_jsonl(os.path.join(path, "trace_tail.jsonl"), recorder.events)
        _write_jsonl(
            os.path.join(path, "oplog_tail.jsonl"), recorder.oplog_records
        )
        _write_jsonl(
            os.path.join(path, "resources.jsonl"), recorder.resource_samples
        )
        return path
    except OSError:  # pragma: no cover - dump must never mask the crash
        return ""


# -- bundle reader (`repro report --bundle`) --------------------------------------


def _load_json(path: str):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _load_jsonl(path: str) -> list[dict]:
    records = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    try:
                        records.append(json.loads(line))
                    except ValueError:
                        pass
    except OSError:
        pass
    return records


def load_bundle(path: str) -> dict:
    """Read a crash bundle directory back into one dict."""
    if not os.path.isdir(path):
        raise OSError(f"{path}: not a crash bundle directory")
    return {
        "path": path,
        "manifest": _load_json(os.path.join(path, "manifest.json")) or {},
        "config": _load_json(os.path.join(path, "config.json")) or {},
        "env": _load_json(os.path.join(path, "env.json")) or {},
        "events": _load_jsonl(os.path.join(path, "trace_tail.jsonl")),
        "oplog": _load_jsonl(os.path.join(path, "oplog_tail.jsonl")),
        "resources": _load_jsonl(os.path.join(path, "resources.jsonl")),
    }


def _mb(n: float) -> str:
    return f"{n / 1e6:.1f}"


def _short(value, width: int = 100) -> str:
    text = str(value)
    return text if len(text) <= width else text[: width - 3] + "..."


def render_bundle(path: str, tail: int = 12) -> str:
    """Render a crash bundle as operator-readable tables."""
    bundle = load_bundle(path)
    manifest = bundle["manifest"]
    sections: list[str] = []

    rows = [["bundle", bundle["path"]]]
    error = manifest.get("error")
    if error:
        rows.append(["error", f"{error.get('type')}: {error.get('message')}"])
    for key in ("pid", "python", "platform", "created"):
        if key in manifest:
            rows.append([key, manifest[key]])
    for key, value in sorted((manifest.get("state") or {}).items()):
        rows.append([key, _short(value)])
    sections.append(format_table(["field", "value"], rows, title="crash"))

    if bundle["config"]:
        rows = [
            [key, _short(value)]
            for key, value in sorted(bundle["config"].items())
            if value not in (None, False)
        ]
        sections.append(format_table(["option", "value"], rows, title="config"))

    if bundle["oplog"]:
        rows = [
            [
                r.get("t", ""), r.get("component", ""), r.get("severity", ""),
                r.get("event", ""),
                _short(r.get("reason") or r.get("backend") or "", 72),
            ]
            for r in bundle["oplog"][-tail:]
        ]
        sections.append(format_table(
            ["t", "component", "severity", "event", "detail"], rows,
            title=f"oplog tail ({len(bundle['oplog'])} records)",
        ))

    if bundle["events"]:
        rows = [
            [e.get("event", ""), e.get("stage", ""),
             json.dumps({k: v for k, v in e.items()
                         if k not in ("event", "stage")}, default=str)[:60]]
            for e in bundle["events"][-tail:]
        ]
        sections.append(format_table(
            ["event", "stage", "fields"], rows,
            title=f"trace tail ({len(bundle['events'])} events)",
        ))

    if bundle["resources"]:
        last = bundle["resources"][-1]
        peak_rss = max(
            (s.get("rss_bytes", 0) for s in bundle["resources"]), default=0
        )
        rows = [
            ["samples", len(bundle["resources"])],
            ["peak rss (MB)", _mb(peak_rss)],
            ["last rss (MB)", _mb(last.get("rss_bytes", 0))],
            ["last worker rss (MB)", _mb(last.get("worker_rss_bytes", 0))],
            ["last shm (MB)", _mb(last.get("shm_bytes", 0))],
            ["last cpu (s)", last.get("cpu_s", 0)],
            ["gil", last.get("gil", "?")],
        ]
        sections.append(format_table(
            ["field", "value"], rows, title="resources",
        ))

    if error and error.get("traceback"):
        sections.append("traceback\n" + error["traceback"].rstrip())
    return "\n\n".join(sections)
