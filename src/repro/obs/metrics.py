"""Lightweight metrics registry: counters, gauges and histograms.

The runtime's quantitative layer.  A :class:`MetricsRegistry` owns named
instruments; instrumented code (the engine, both execution backends, the
speculative context, shadow/commit/checkpoint helpers, the feedback
scheduler) asks the registry for an instrument once and then updates it.
Every recorded value is **deterministic** -- element counts, byte counts,
mark counts, retry counts -- never host seconds, so a metrics snapshot is
reproducible bit-for-bit across runs and across execution backends (host
wall-clock lives in the span layer, :mod:`repro.obs.spans`).

Cost discipline:

* **Disabled** (the default): ``registry.counter(...)`` hands back a shared
  null instrument whose ``inc``/``set``/``observe`` are no-ops, and hot
  paths that accumulate locally check ``registry.enabled`` once per block
  before flushing.  The per-access cost is a plain slot-attribute integer
  increment.
* **Enabled**: instruments are plain attribute updates; the registry is a
  dict of instruments, snapshotted once per stage for the event stream.

Fork-backend workers accumulate into a private registry and ship its
:meth:`~MetricsRegistry.snapshot` back inside the per-block delta; the
parent :meth:`~MetricsRegistry.merge`\\ s deltas in block order, so the
merged totals equal a serial run's exactly (integer/float sums of the same
per-block contributions).

The process-wide default (:func:`use_instrumentation`) mirrors
:func:`repro.core.backend.use_backend`: a config that leaves
``metrics``/``spans`` as ``None`` picks the scoped default, which is how
the golden parity suite runs its whole matrix fully instrumented without
threading flags through every driver.
"""

from __future__ import annotations

import contextlib


class Counter:
    """Monotonically increasing count (elements copied, marks set, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value (pool size, window width, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of a value distribution: count/total/min/max."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments for one run (or one fork worker's share of one).

    ``counter``/``gauge``/``histogram`` create on first use and return the
    existing instrument afterwards; on a disabled registry they return a
    shared null instrument, so call sites never branch.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- snapshot / merge -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready state: sorted, deterministic, merge-compatible."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram summaries add; gauges take the incoming
        value (last write wins, matching serial in-order execution when
        deltas are merged in block order).
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            h = self.histogram(name)
            if not summary["count"]:
                continue
            h.count += summary["count"]
            h.total += summary["total"]
            if h.min is None or summary["min"] < h.min:
                h.min = summary["min"]
            if h.max is None or summary["max"] > h.max:
                h.max = summary["max"]

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: Shared disabled registry: the default ``machine.metrics`` everywhere.
NULL_REGISTRY = MetricsRegistry(enabled=False)


# -- process-wide instrumentation defaults ------------------------------------------

_default_metrics = False
_default_spans = False


def instrumentation_defaults() -> tuple[bool, bool]:
    """Current process-wide ``(metrics, spans)`` defaults."""
    return _default_metrics, _default_spans


@contextlib.contextmanager
def use_instrumentation(metrics: bool = True, spans: bool = True):
    """Scope the instrumentation defaults: every run started inside the
    ``with`` whose config leaves ``metrics``/``spans`` as ``None`` uses
    these values.  Lets existing entry points (and the golden parity
    suite) run fully instrumented without threading flags through every
    call."""
    global _default_metrics, _default_spans
    previous = (_default_metrics, _default_spans)
    _default_metrics, _default_spans = metrics, spans
    try:
        yield
    finally:
        _default_metrics, _default_spans = previous


def resolve_metrics_enabled(config) -> bool:
    """Whether a config turns the metrics registry on."""
    value = getattr(config, "metrics", None)
    return _default_metrics if value is None else bool(value)


def resolve_spans_enabled(config) -> bool:
    """Whether a config turns span tracing on (an explicit ``--perfetto``
    output path implies spans, there being nothing to export otherwise)."""
    value = getattr(config, "spans", None)
    if value is not None:
        return bool(value)
    if getattr(config, "perfetto_path", None):
        return True
    return _default_spans


def render_metrics(snapshot: dict) -> str:
    """Human-readable table of one registry snapshot."""
    from repro.util.tables import format_table

    rows: list[list] = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append([name, "counter", value])
    for name, value in snapshot.get("gauges", {}).items():
        rows.append([name, "gauge", value])
    for name, summary in snapshot.get("histograms", {}).items():
        if summary["count"]:
            rendered = (
                f"n={summary['count']} total={summary['total']:g} "
                f"min={summary['min']:g} max={summary['max']:g}"
            )
        else:
            rendered = "n=0"
        rows.append([name, "histogram", rendered])
    rows.sort(key=lambda r: r[0])
    return format_table(["metric", "kind", "value"], rows, title="metrics")
