"""Typed stage events emitted by the engine.

One speculative run narrates itself as a flat event sequence::

    RunBegin
      (StageBegin
         BlockExecuted*  FaultInjected*
         DependenceFound
         (Retry | Commit)  Restore?
         [SpanClosed* MetricsSnapshot]
       StageEnd)+
    [SpanClosed MetricsSnapshot]
    RunEnd

Observability events are optional (``RuntimeConfig.metrics``/``spans``):
``SpanClosed`` records one dual-clock span (block spans interleave with
their ``BlockExecuted`` events in block order, phase and stage spans close
before ``StageEnd``, the run span right before ``RunEnd``);
``MetricsSnapshot`` carries the cumulative metrics registry per stage and
at run scope.

Every event serializes to a flat JSON object (``to_dict``) and
reconstructs from one (:func:`event_from_dict`), so a JSONL trace
round-trips losslessly.  :func:`validate_events` checks the structural
contract above -- begin/end pairing, monotone stage ids, commit/restore
placement -- and is what the contract tests (and any external consumer)
should run against a recorded stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable

from repro.core.results import StageResult
from repro.machine.timeline import Category
from repro.util.blocks import Block


#: Registry of event kind -> concrete class, for deserialization.
_REGISTRY: dict[str, type] = {}


@dataclass(frozen=True, slots=True)
class StageEvent:
    """Base class: every event knows its kind and (usually) its stage."""

    def __init_subclass__(cls, **kwargs) -> None:
        # ``slots=True`` recreates each subclass, re-triggering this hook;
        # the final (slotted) class wins the registry entry.  The zero-arg
        # super() form cannot be used here for the same reason.
        _REGISTRY[cls.kind] = cls  # type: ignore[attr-defined]

    def to_dict(self) -> dict:
        """Flat JSON-serializable representation."""
        out: dict = {"event": type(self).kind}  # type: ignore[attr-defined]
        for f in fields(self):
            out[f.name] = _jsonify(getattr(self, f.name))
        return out


def _jsonify(value):
    if isinstance(value, Block):
        return [value.proc, value.start, value.stop]
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {
            (k.name if isinstance(k, Category) else k): _jsonify(v)
            for k, v in value.items()
        }
    return value


@dataclass(frozen=True, slots=True)
class RunBegin(StageEvent):
    kind = "run_begin"
    loop: str
    strategy: str
    n_procs: int
    n_iterations: int


@dataclass(frozen=True, slots=True)
class StageBegin(StageEvent):
    kind = "stage_begin"
    stage: int
    blocks: list
    remaining: int
    degraded: bool


@dataclass(frozen=True, slots=True)
class BlockExecuted(StageEvent):
    kind = "block_executed"
    stage: int
    pos: int
    proc: int
    start: int
    stop: int
    fault: str | None = None
    exit_iteration: int | None = None


@dataclass(frozen=True, slots=True)
class FaultInjected(StageEvent):
    kind = "fault_injected"
    stage: int
    proc: int
    fault: str


@dataclass(frozen=True, slots=True)
class DependenceFound(StageEvent):
    """Analysis verdict for one stage (``earliest_sink_pos=None`` = clean)."""

    kind = "dependence_found"
    stage: int
    earliest_sink_pos: int | None
    n_arcs: int
    fault_forced: bool = False


@dataclass(frozen=True, slots=True)
class Commit(StageEvent):
    kind = "commit"
    stage: int
    iterations: int
    elements: int
    work: float
    committed_upto: int


@dataclass(frozen=True, slots=True)
class Restore(StageEvent):
    kind = "restore"
    stage: int
    elements: int
    procs: list


@dataclass(frozen=True, slots=True)
class Retry(StageEvent):
    """A zero-commit stage wiped out by injected faults is being retried."""

    kind = "retry"
    stage: int
    streak: int


@dataclass(frozen=True, slots=True)
class BackendDegraded(StageEvent):
    """The execution backend's worker pool was abandoned mid-run.

    Emitted when the worker supervisor (:mod:`repro.core.supervise`) gives
    up on a fork/shm pool -- respawn budget exhausted or a poison block --
    and the engine falls back down the shm -> fork -> serial chain.  The
    stage's tasks re-run on the fallback backend from unchanged engine
    state, so everything *after* this event is bit-identical to an
    undisturbed run; the event is the only trace-visible mark of the
    failover."""

    kind = "backend_degraded"
    stage: int
    from_backend: str
    to_backend: str
    reason: str


@dataclass(frozen=True, slots=True)
class StageEnd(StageEvent):
    kind = "stage_end"
    stage: int
    result: StageResult

    def to_dict(self) -> dict:
        out = {"event": "stage_end", "stage": self.stage}
        r = self.result
        out["result"] = {
            "index": r.index,
            "blocks": [[b.proc, b.start, b.stop] for b in r.blocks],
            "failed": r.failed,
            "earliest_sink_pos": r.earliest_sink_pos,
            "committed_iterations": r.committed_iterations,
            "remaining_after": r.remaining_after,
            "committed_work": r.committed_work,
            "n_arcs": r.n_arcs,
            "committed_elements": r.committed_elements,
            "restored_elements": r.restored_elements,
            "redistributed_iterations": r.redistributed_iterations,
            "span": r.span,
            "migration_distance": r.migration_distance,
            "breakdown": {c.name: v for c, v in r.breakdown.items()},
            "faulted_procs": list(r.faulted_procs),
            "degraded": r.degraded,
        }
        return out


@dataclass(frozen=True, slots=True)
class SpanClosed(StageEvent):
    """One completed span of the dual-clock trace (:mod:`repro.obs.spans`).

    ``host_*`` fields are wall-clock seconds relative to the run's start
    (honest, non-deterministic); ``virt_*`` fields are virtual-time units
    from the cost model (deterministic, bit-identical across execution
    backends).  ``stage`` is ``None`` for run-level spans; ``proc`` is
    ``None`` for spans on the engine's own track.
    """

    kind = "span"
    name: str
    cat: str  # "run" | "stage" | "phase" | "block"
    stage: int | None
    proc: int | None
    host_start: float
    host_dur: float
    virt_start: float
    virt_dur: float


@dataclass(frozen=True, slots=True)
class MetricsSnapshot(StageEvent):
    """Cumulative metrics-registry state at one point of the run.

    Emitted once per stage (just before ``StageEnd``) and once at run
    scope (just before ``RunEnd``) when metrics are enabled.  Values are
    cumulative since run start, so a consumer diffs consecutive snapshots
    for per-stage deltas.  All values are deterministic counts -- see
    :mod:`repro.obs.metrics`.
    """

    kind = "metrics"
    scope: str  # "stage" | "run"
    stage: int | None
    virt_time: float
    counters: dict
    gauges: dict
    histograms: dict


@dataclass(frozen=True, slots=True)
class RunEnd(StageEvent):
    kind = "run_end"
    loop: str
    strategy: str
    stages: int
    restarts: int
    total_time: float
    sequential_work: float
    exit_iteration: int | None = None
    faults_survived: int = 0
    retries: int = 0


def stage_result_from_dict(d: dict) -> StageResult:
    """Rebuild a :class:`StageResult` from its ``StageEnd`` serialization."""
    return StageResult(
        index=d["index"],
        blocks=[Block(*b) for b in d["blocks"]],
        failed=d["failed"],
        earliest_sink_pos=d["earliest_sink_pos"],
        committed_iterations=d["committed_iterations"],
        remaining_after=d["remaining_after"],
        committed_work=d["committed_work"],
        n_arcs=d["n_arcs"],
        committed_elements=d["committed_elements"],
        restored_elements=d["restored_elements"],
        redistributed_iterations=d["redistributed_iterations"],
        span=d["span"],
        migration_distance=d["migration_distance"],
        breakdown={Category[k]: v for k, v in d["breakdown"].items()},
        faulted_procs=list(d["faulted_procs"]),
        degraded=d["degraded"],
    )


def event_from_dict(d: dict) -> StageEvent:
    """Inverse of ``to_dict`` -- reconstruct the typed event."""
    data = dict(d)
    kind = data.pop("event")
    try:
        cls = _REGISTRY[kind]
    except KeyError:
        raise ValueError(f"unknown event kind {kind!r}") from None
    if cls is StageEnd:
        return StageEnd(
            stage=data["stage"], result=stage_result_from_dict(data["result"])
        )
    if cls is StageBegin:
        data["blocks"] = [Block(*b) for b in data["blocks"]]
    return cls(**data)


#: Events legal only between a StageBegin and its StageEnd.
_IN_STAGE = frozenset(
    {"block_executed", "fault_injected", "dependence_found", "commit",
     "restore", "retry", "backend_degraded"}
)

#: Observability events: a stage id of ``None`` means run scope (legal
#: anywhere in the stream); a concrete id must match the open stage.
_OBSERVABILITY = frozenset({"span", "metrics"})


def validate_events(events: Iterable[StageEvent]) -> None:
    """Enforce the stream contract; raise ``ValueError`` on violation.

    * exactly one ``RunBegin`` (first) and one ``RunEnd`` (last);
    * ``StageBegin``/``StageEnd`` strictly paired, never nested, with
      monotonically non-decreasing stage ids;
    * per-stage events carry the enclosing stage's id and appear only
      inside a begin/end pair;
    * every non-retried stage carries an analysis verdict
      (``DependenceFound``), and a ``Commit`` and ``Retry`` never share a
      stage;
    * observability events (``span`` / ``metrics``) carrying a concrete
      stage id appear inside that stage; run-scoped ones (``stage=None``)
      may appear anywhere between the run brackets.
    """
    events = list(events)
    if not events:
        raise ValueError("empty event stream")
    if events[0].kind != "run_begin" or events[-1].kind != "run_end":
        raise ValueError("stream must be bracketed by run_begin/run_end")
    open_stage: int | None = None
    last_stage = -1
    saw: set[str] = set()
    for k, event in enumerate(events):
        kind = event.kind
        if kind in ("run_begin", "run_end"):
            if 0 < k < len(events) - 1:
                raise ValueError(f"{kind} in the middle of the stream (at {k})")
            continue
        if kind in _OBSERVABILITY:
            stage = event.stage
            if stage is not None and stage != open_stage:
                raise ValueError(
                    f"{kind} carries stage {stage} "
                    f"{'outside any stage' if open_stage is None else f'inside stage {open_stage}'}"
                    f" (at {k})"
                )
            continue
        if kind == "stage_begin":
            if open_stage is not None:
                raise ValueError(f"nested stage_begin at {k}")
            if event.stage < last_stage:
                raise ValueError(
                    f"stage ids must be monotone: {event.stage} after {last_stage}"
                )
            open_stage = event.stage
            last_stage = event.stage
            saw = set()
        elif kind == "stage_end":
            if open_stage is None or event.stage != open_stage:
                raise ValueError(f"unpaired stage_end at {k}")
            if "commit" in saw and "retry" in saw:
                raise ValueError(f"stage {event.stage} both committed and retried")
            open_stage = None
        elif kind in _IN_STAGE:
            if open_stage is None:
                raise ValueError(f"{kind} outside any stage (at {k})")
            if getattr(event, "stage") != open_stage:
                raise ValueError(
                    f"{kind} carries stage {event.stage} inside stage {open_stage}"
                )
            saw.add(kind)
        else:  # pragma: no cover - future event kinds
            raise ValueError(f"unknown event kind {kind!r}")
    if open_stage is not None:
        raise ValueError(f"stage {open_stage} never ended")
