"""Hierarchical dual-clock span tracing and the Perfetto exporter.

Every engine run can narrate *where time went* as a tree of spans::

    run
      stage 0
        checkpoint | execute | analyze | commit | restore
          block (one per scheduled block, on its processor's track)
      stage 1
        ...

Each span records **two clocks**:

* *host* -- real wall-clock seconds (``time.perf_counter``), honest and
  non-deterministic; this is what you optimize when making the runtime
  itself faster.
* *virtual* -- the cost model's simulated time
  (:meth:`repro.machine.timeline.Timeline.virtual_now`), deterministic and
  bit-identical across execution backends; this is what the paper's
  figures are measured in.

Spans are emitted through the engine's existing :class:`EventBus` as
:class:`~repro.obs.events.SpanClosed` events, so they ride the same JSONL
trace as the stage events, and :func:`chrome_trace` folds a recorded
stream into Chrome trace-event JSON that Perfetto (https://ui.perfetto.dev)
renders directly: one process per clock, one thread track per processor
plus an engine track, metric counters as Perfetto counter tracks.

The fork backend ships per-block host timings and metric deltas back
through its delta pipe; the engine emits the block spans itself, in block
order, right after each ``BlockExecuted`` -- so the *order* of a trace is
deterministic even though host durations are not.
"""

from __future__ import annotations

import json
import time
from typing import IO, Callable, Iterable

from repro.obs.events import MetricsSnapshot, SpanClosed, StageEvent


class _OpenSpan:
    """Mutable bookkeeping for a span between begin() and end()."""

    __slots__ = ("name", "cat", "stage", "proc", "host_start", "virt_start")

    def __init__(self, name, cat, stage, proc, host_start, virt_start) -> None:
        self.name = name
        self.cat = cat
        self.stage = stage
        self.proc = proc
        self.host_start = host_start
        self.virt_start = virt_start


class SpanTracker:
    """Builds and emits :class:`SpanClosed` events for one engine run.

    ``emit`` is the engine's event-bus emit; ``host_now`` returns seconds
    relative to the run start; ``virt_now`` returns the timeline's current
    virtual time.  The tracker itself keeps no stack -- the engine owns
    span lifetimes explicitly (phases nest lexically, the stage span is
    closed by ``_end_stage``), which keeps `continue`/`return` paths in
    the engine loop from leaking spans.
    """

    def __init__(
        self,
        emit: Callable[[StageEvent], None],
        host_now: Callable[[], float],
        virt_now: Callable[[], float],
    ) -> None:
        self._emit = emit
        self.host_now = host_now
        self.virt_now = virt_now

    def begin(
        self, name: str, cat: str, stage: int | None = None,
        proc: int | None = None,
    ) -> _OpenSpan:
        return _OpenSpan(
            name, cat, stage, proc, self.host_now(), self.virt_now()
        )

    def end(self, span: _OpenSpan) -> None:
        self._emit(SpanClosed(
            name=span.name, cat=span.cat, stage=span.stage, proc=span.proc,
            host_start=span.host_start,
            host_dur=self.host_now() - span.host_start,
            virt_start=span.virt_start,
            virt_dur=self.virt_now() - span.virt_start,
        ))

    class _Phase:
        __slots__ = ("tracker", "span")

        def __init__(self, tracker, span) -> None:
            self.tracker = tracker
            self.span = span

        def __enter__(self):
            return self.span

        def __exit__(self, *exc) -> bool:
            self.tracker.end(self.span)
            return False

    def phase(self, name: str, stage: int) -> "SpanTracker._Phase":
        """Context manager for one engine phase of one stage."""
        return self._Phase(self, self.begin(name, "phase", stage=stage))

    def block_span(
        self, stage: int, proc: int,
        host_start: float, host_dur: float,
        virt_start: float, virt_dur: float,
    ) -> None:
        """Emit a per-block span from backend-measured timings."""
        self._emit(SpanClosed(
            name="block", cat="block", stage=stage, proc=proc,
            host_start=host_start, host_dur=host_dur,
            virt_start=virt_start, virt_dur=virt_dur,
        ))


def make_host_clock() -> Callable[[], float]:
    """Seconds since this clock was created (one per engine run)."""
    t0 = time.perf_counter()
    return lambda: time.perf_counter() - t0


# -- Chrome trace-event (Perfetto) export --------------------------------------------

#: Synthetic process ids: one timeline per clock.
HOST_PID = 1
VIRT_PID = 2

#: Thread ids inside each process: 0 = the engine's own track,
#: ``proc + 1`` = simulated processor ``proc``.
ENGINE_TID = 0


def _tid(proc: int | None) -> int:
    return ENGINE_TID if proc is None else proc + 1


#: Resource-sample fields exported as host-timeline counter tracks.
_RESOURCE_COUNTERS = (
    ("rss_bytes", "host rss (bytes)"),
    ("worker_rss_bytes", "worker rss (bytes)"),
    ("shm_bytes", "/dev/shm (bytes)"),
    ("cpu_s", "cpu time (s)"),
    ("inflight", "inflight blocks"),
)


def chrome_trace(
    events: Iterable[StageEvent],
    resource_samples: Iterable[dict] = (),
) -> dict:
    """Fold a recorded event stream into Chrome trace-event JSON.

    Span events become complete (``ph: "X"``) slices on two synthetic
    processes -- pid 1 renders the host wall-clock timeline (microseconds),
    pid 2 the virtual timeline (one virtual-time unit = 1 "us") -- with one
    thread per simulated processor.  Stage-scoped metrics snapshots become
    counter (``ph: "C"``) tracks on the virtual timeline.  Host resource
    samples (``resource_samples``, from
    :class:`repro.obs.resources.ResourceSampler`) become counter tracks on
    the *host* timeline only: they are operational-plane data and never
    touch the deterministic virtual clock.  The result dict serializes
    with ``json.dump`` and loads directly in Perfetto.
    """
    trace: list[dict] = []

    def meta(pid: int, name: str) -> None:
        trace.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": name},
        })

    meta(HOST_PID, "host wall-clock")
    meta(VIRT_PID, "virtual time (cost model)")
    seen_tids: set[tuple[int, int]] = set()

    def thread_meta(pid: int, tid: int) -> None:
        if (pid, tid) in seen_tids:
            return
        seen_tids.add((pid, tid))
        name = "engine" if tid == ENGINE_TID else f"proc {tid - 1}"
        trace.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": name},
        })

    for event in events:
        kind = event.kind
        if kind == "span":
            label = (
                event.name if event.stage is None
                else f"{event.name} s{event.stage}"
            )
            tid = _tid(event.proc)
            thread_meta(HOST_PID, tid)
            thread_meta(VIRT_PID, tid)
            common = {
                "name": label, "cat": event.cat, "ph": "X", "tid": tid,
            }
            trace.append({
                **common, "pid": HOST_PID,
                "ts": event.host_start * 1e6, "dur": event.host_dur * 1e6,
            })
            trace.append({
                **common, "pid": VIRT_PID,
                "ts": event.virt_start, "dur": event.virt_dur,
            })
        elif kind == "metrics" and event.scope == "stage":
            for name, value in event.counters.items():
                trace.append({
                    "ph": "C", "name": name, "pid": VIRT_PID, "tid": 0,
                    "ts": event.virt_time, "args": {"value": value},
                })
    for sample in resource_samples:
        t = sample.get("t")
        if t is None:
            continue
        for key, label in _RESOURCE_COUNTERS:
            value = sample.get(key)
            if value is None:
                continue
            trace.append({
                "ph": "C", "name": label, "pid": HOST_PID, "tid": 0,
                "ts": t * 1e6, "args": {"value": value},
            })
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


class PerfettoTraceSink:
    """Event sink buffering span/metric events, written as Chrome trace
    JSON on close (``--perfetto PATH`` / ``RuntimeConfig.perfetto_path``).

    Accepts a path (opened and owned) or an open text stream (borrowed).
    """

    def __init__(self, target: str | IO[str]) -> None:
        self._target = target
        self._events: list[StageEvent] = []
        self._resource_samples: list[dict] = []

    def emit(self, event: StageEvent) -> None:
        if isinstance(event, (SpanClosed, MetricsSnapshot)):
            self._events.append(event)

    def set_resource_samples(self, samples: list[dict]) -> None:
        """Host resource samples to merge as counter tracks on export.

        Called by the engine right before the bus closes this sink; the
        samples land on the host timeline only, so traces recorded with
        the sampler off are byte-identical to before.
        """
        self._resource_samples = list(samples)

    def close(self) -> None:
        payload = chrome_trace(self._events, self._resource_samples)
        if isinstance(self._target, str):
            with open(self._target, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
        else:
            json.dump(payload, self._target)
            self._target.flush()
