"""The iteration-wise Recursive LRPD test.

The paper's processor-wise test commits at *processor* granularity: the
earliest sink processor's whole block re-executes, even its iterations
before the actual dependence sink.  The original LRPD test marks at
iteration granularity; applied recursively, the analysis can advance the
commit point to the exact sink *iteration* -- committing a prefix of the
failing processor's block -- at the price of iteration-level shadow
structures (the N-level mark list with per-write value logs) whose memory
and analysis cost are proportional to the reference trace, which is the
very overhead the processor-wise simplification avoids (Section 2).

This module implements that finer-granularity variant as an extension, so
the trade-off is measurable: fewer re-executed iterations per failure
against higher marking/analysis volume.

Running on :class:`~repro.core.engine.StageEngine` (as the registered
``iterwise`` strategy) gives this variant the full shared lifecycle --
including fault injection, pool shrink on permanent deaths, zero-commit
retry bounds and the ``--self-check`` oracle, none of which the
pre-engine driver had.  When a fault forces the failure point below the
analysis sink, the partial-prefix commit is clamped to the faulted
block's start (a faulted block's value log is untrusted).
"""

from __future__ import annotations

import math

from repro.config import RedistributionPolicy, RuntimeConfig, Strategy
from repro.core.engine import StageEngine, register_strategy
from repro.core.engine import Strategy as EngineStrategy
from repro.core.commit import commit_states
from repro.core.results import RunResult
from repro.core.stage import charge_redistribution
from repro.errors import ConfigurationError, SpeculationError
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage
from repro.machine.timeline import Category
from repro.shadow.marklist import MarkList
from repro.util.blocks import Block, partition_even


def _iterwise_analysis(
    blocks: list[Block],
    marklists: dict[int, dict[str, MarkList]],
    skip: frozenset[int] = frozenset(),
) -> tuple[int | None, int]:
    """Earliest sink *iteration* over all cross-processor flow arcs.

    Scans blocks in iteration order, maintaining the earliest writing
    iteration per element; an exposed read on a *different* processor than
    the writer is an arc.  ``skip`` holds faulted block positions, whose
    mark lists are truncated (fail-stop) or untrusted (corrupt write); the
    fault merge forces everything from the first faulted position to
    re-execute, so their marks must not influence the verdict.  Returns
    ``(sink_iteration | None, n_arcs)``.
    """
    writer: dict[tuple[str, int], tuple[int, int]] = {}  # addr -> (iter, proc)
    sink: int | None = None
    n_arcs = 0
    for pos, block in enumerate(blocks):
        if pos in skip:
            continue
        lists = marklists[block.proc]
        for k, i in enumerate(block.iterations()):
            if sink is not None and i >= sink:
                break
            for name, ml in lists.items():
                marks = ml.level(k)
                for index in marks.exposed_reads | marks.updates:
                    hit = writer.get((name, index))
                    if hit is not None and hit[1] != block.proc:
                        n_arcs += 1
                        if sink is None or i < sink:
                            sink = i
            for name, ml in lists.items():
                marks = ml.level(k)
                for index in marks.writes | marks.updates:
                    writer.setdefault((name, index), (i, block.proc))
    return sink, n_arcs


def _commit_prefix(
    machine: Machine,
    loop: SpeculativeLoop,
    block: Block,
    marklists: dict[str, MarkList],
    upto: int,
) -> int:
    """Commit iterations ``[block.start, upto)`` of one block from the
    per-iteration value logs (in order, so last value wins)."""
    n_elems = 0
    for k, i in enumerate(block.iterations()):
        if i >= upto:
            break
        for name, ml in marklists.items():
            marks = ml.level(k)
            data = machine.memory[name].data
            for index, value in marks.values.items():
                data[index] = value
                n_elems += 1
    if n_elems:
        machine.charge(block.proc, Category.COMMIT, machine.costs.commit_per_elem * n_elems)
    return n_elems


@register_strategy
class IterwiseBlocked(EngineStrategy):
    """Blocked schedule with iteration-granularity commit."""

    name = "iterwise"

    def __init__(self) -> None:
        self.pending: list[Block] = []
        self.marklists: dict[int, dict[str, MarkList]] = {}
        self._redistributing = False
        self._sink: int | None = None  # earliest sink iteration this stage
        self._partial: Block | None = None

    @classmethod
    def default_config(cls, **overrides) -> RuntimeConfig:
        return RuntimeConfig.adaptive(**overrides)

    def validate(self, loop: SpeculativeLoop, config: RuntimeConfig) -> None:
        if config.strategy is not Strategy.BLOCKED:
            raise ConfigurationError("run_blocked_iterwise needs a blocked strategy")
        if loop.inductions:
            raise ConfigurationError("iteration-wise test does not support inductions")
        if loop.untested_names:
            raise ConfigurationError(
                "iteration-wise commit requires all arrays tested; declare "
                f"{loop.untested_names} tested or use the processor-wise test"
            )
        if loop.reductions:
            raise ConfigurationError(
                "iteration-wise commit does not support reductions yet"
            )

    def run_label(self, eng: StageEngine) -> str:
        return f"R-LRPD-iterwise({eng.config.label()})"

    def schedule(self, eng: StageEngine) -> list[Block]:
        if eng.stage_idx == 0:
            blocks = partition_even(0, eng.n, eng.alive)
            self._redistributing = False
        else:
            policy = eng.config.redistribution
            self._redistributing = policy is RedistributionPolicy.ALWAYS or (
                policy is RedistributionPolicy.ADAPTIVE
                and eng.machine.costs.should_redistribute(
                    eng.remaining, len(eng.alive)
                )
            )
            blocks = (
                partition_even(eng.committed_upto, eng.n, eng.alive)
                if self._redistributing
                else self.pending
            )
        nonempty = [b for b in blocks if len(b)]
        if not self._redistributing and eng.degraded and any(
            b.proc not in eng.alive for b in nonempty
        ):
            # A pending block's owner died: re-block the remainder over the
            # survivors (same rule as the processor-wise NRD driver).
            nonempty = [
                b for b in partition_even(eng.committed_upto, eng.n, eng.alive)
                if len(b)
            ]
        if not nonempty:
            raise SpeculationError(f"{eng.loop.name}: empty schedule with work left")
        return nonempty

    def charge_schedule(
        self, eng: StageEngine, blocks: list[Block]
    ) -> tuple[int, float]:
        if eng.stage_idx > 0 and self._redistributing:
            redistributed = charge_redistribution(
                eng.machine, ((b.proc, len(b)) for b in blocks),
                eng.machine.costs.ell,
            )
        else:
            redistributed = 0
        return redistributed, 0.0

    def begin_stage_states(self, eng: StageEngine, blocks: list[Block]) -> None:
        self.marklists = {}
        self._partial = None

    def before_block(self, eng: StageEngine, block: Block) -> None:
        pass  # per-iteration value logs subsume bulk pre-initialization

    def wants_preload(self, eng: StageEngine) -> bool:
        return False

    def exec_kwargs(self, eng: StageEngine, pos: int, block: Block) -> dict:
        ml = {
            name: MarkList(name, block.proc, log_values=True)
            for name in eng.loop.tested_names
        }
        self.marklists[block.proc] = ml
        return {"marklists": ml}

    def install_marklists(
        self, eng: StageEngine, pos: int, block: Block, marklists
    ) -> None:
        # An out-of-process backend mutated a pickled copy of the lists
        # handed out by exec_kwargs; adopt the filled-in copy.
        self.marklists[block.proc] = marklists

    def after_block(self, eng: StageEngine, pos: int, block: Block, ctx) -> None:
        # Iteration-level marking costs an extra pass over the marks.
        extra_refs = sum(
            m.distinct_refs() for m in self.marklists[block.proc].values()
        )
        eng.machine.charge(
            block.proc, Category.MARK, eng.machine.costs.mark * extra_refs
        )

    def analyze(
        self, eng: StageEngine, blocks: list[Block]
    ) -> tuple[int | None, int]:
        sink, n_arcs = _iterwise_analysis(
            blocks, self.marklists, skip=frozenset(eng.faulted)
        )
        # Iteration-level analysis scans every level, not distinct refs.
        log_p = max(1.0, math.log2(max(1, len(blocks))))
        for block in blocks:
            refs = sum(
                m.distinct_refs() for m in self.marklists[block.proc].values()
            )
            eng.machine.charge(
                block.proc, Category.ANALYSIS,
                eng.machine.costs.analysis_per_ref * refs * log_p,
            )
        self._sink = sink
        if sink is None:
            return None, n_arcs
        # Block-position failure point: first block not entirely before the
        # sink iteration (the engine's commit split works on positions).
        return sum(1 for b in blocks if b.stop <= sink), n_arcs

    def on_failure_point(
        self, eng: StageEngine, blocks: list[Block], f_pos: int | None,
        fault_forced: bool,
    ) -> None:
        if fault_forced:
            # A faulted block's value log is untrusted: clamp the commit
            # point to the faulted block's start (no partial prefix).
            self._sink = blocks[f_pos].start

    def sink_field(self, eng: StageEngine, f_pos: int | None) -> int | None:
        return self._sink  # an iteration, not a position

    def partial_progress(
        self, eng: StageEngine, blocks: list[Block], f_pos: int | None
    ) -> bool:
        return (
            self._sink is not None
            and f_pos is not None
            and f_pos < len(blocks)
            and self._sink > blocks[f_pos].start
        )

    def commit(
        self, eng: StageEngine, committing: list[Block], failing: list[Block]
    ) -> tuple[int, float]:
        machine, loop = eng.machine, eng.loop
        committed_elements = commit_states(
            machine, loop, [eng.states[b.proc] for b in committing]
        )
        stage_work = 0.0
        for block in committing:
            times = eng.states[block.proc].iter_times
            works = eng.states[block.proc].iter_work
            for i in block.iterations():
                eng.final_iter_times[i] = times[i]
                stage_work += works[i]
        sink = self._sink
        partial = None
        if sink is not None:
            partial = next(
                (b for b in failing if b.start <= sink < b.stop), None
            )
        if partial is not None and sink is not None and sink > partial.start:
            committed_elements += _commit_prefix(
                machine, loop, partial, self.marklists[partial.proc], sink
            )
            times = eng.states[partial.proc].iter_times
            works = eng.states[partial.proc].iter_work
            for i in range(partial.start, sink):
                eng.final_iter_times[i] = times[i]
                stage_work += works[i]
        self._partial = partial
        return committed_elements, stage_work

    def advance(self, eng: StageEngine, committing: list[Block]) -> int:
        return eng.n if self._sink is None else self._sink

    def committed_iterations(
        self, eng: StageEngine, committing: list[Block], advance: int
    ) -> int:
        return advance - eng.committed_upto

    def zero_commit_message(self, eng: StageEngine, f_pos: int | None) -> str:
        return (
            f"{eng.loop.name}: iteration-wise stage {eng.stage_idx} stalled at "
            f"{eng.committed_upto}"
        )

    def advance_stall_message(self, eng: StageEngine) -> str:
        return self.zero_commit_message(eng, None)

    def after_stage(self, eng, committing, failing, f_pos) -> None:
        # NRD continuation: the partial block's remainder plus the failing
        # blocks re-execute in place.
        pending: list[Block] = []
        if self._partial is not None:
            pending.append(
                Block(self._partial.proc, eng.committed_upto, self._partial.stop)
            )
        pending.extend(b for b in failing if b is not self._partial)
        self.pending = pending

    def after_zero_commit(self, eng: StageEngine, failing: list[Block]) -> None:
        self.pending = failing


def run_blocked_iterwise(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """Blocked R-LRPD with iteration-granularity commit.

    Like :func:`repro.core.rlrpd.run_blocked`, but the commit point moves
    to the exact earliest sink iteration.  Untested arrays and reductions
    are not supported at iteration granularity (partial-block commit would
    need per-iteration logs for them as well); loops using them should run
    under the processor-wise test.
    """
    config = config or RuntimeConfig.adaptive()
    return StageEngine(
        loop, n_procs, IterwiseBlocked(), config, costs=costs, memory=memory,
    ).run()
