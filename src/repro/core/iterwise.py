"""The iteration-wise Recursive LRPD test.

The paper's processor-wise test commits at *processor* granularity: the
earliest sink processor's whole block re-executes, even its iterations
before the actual dependence sink.  The original LRPD test marks at
iteration granularity; applied recursively, the analysis can advance the
commit point to the exact sink *iteration* -- committing a prefix of the
failing processor's block -- at the price of iteration-level shadow
structures (the N-level mark list with per-write value logs) whose memory
and analysis cost are proportional to the reference trace, which is the
very overhead the processor-wise simplification avoids (Section 2).

This module implements that finer-granularity variant as an extension, so
the trade-off is measurable: fewer re-executed iterations per failure
against higher marking/analysis volume.
"""

from __future__ import annotations

import math

from repro.config import RedistributionPolicy, RuntimeConfig, Strategy
from repro.core.commit import commit_states, reinit_states
from repro.core.executor import ProcessorState, execute_block, make_processor_state
from repro.core.results import RunResult, StageResult
from repro.core.stage import charge_checkpoint_begin, charge_redistribution
from repro.errors import ConfigurationError, NoProgressError, SpeculationError
from repro.loopir.loop import SpeculativeLoop
from repro.machine.checkpoint import CheckpointManager
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage
from repro.machine.timeline import Category
from repro.shadow.marklist import MarkList
from repro.util.blocks import Block, partition_even


def _iterwise_analysis(
    blocks: list[Block],
    marklists: dict[int, dict[str, MarkList]],
) -> tuple[int | None, int]:
    """Earliest sink *iteration* over all cross-processor flow arcs.

    Scans blocks in iteration order, maintaining the earliest writing
    iteration per element; an exposed read on a *different* processor than
    the writer is an arc.  Returns ``(sink_iteration | None, n_arcs)``.
    """
    writer: dict[tuple[str, int], tuple[int, int]] = {}  # addr -> (iter, proc)
    sink: int | None = None
    n_arcs = 0
    for block in blocks:
        lists = marklists[block.proc]
        for k, i in enumerate(block.iterations()):
            if sink is not None and i >= sink:
                break
            for name, ml in lists.items():
                marks = ml.level(k)
                for index in marks.exposed_reads | marks.updates:
                    hit = writer.get((name, index))
                    if hit is not None and hit[1] != block.proc:
                        n_arcs += 1
                        if sink is None or i < sink:
                            sink = i
            for name, ml in lists.items():
                marks = ml.level(k)
                for index in marks.writes | marks.updates:
                    writer.setdefault((name, index), (i, block.proc))
    return sink, n_arcs


def _commit_prefix(
    machine: Machine,
    loop: SpeculativeLoop,
    block: Block,
    marklists: dict[str, MarkList],
    upto: int,
) -> int:
    """Commit iterations ``[block.start, upto)`` of one block from the
    per-iteration value logs (in order, so last value wins)."""
    n_elems = 0
    for k, i in enumerate(block.iterations()):
        if i >= upto:
            break
        for name, ml in marklists.items():
            marks = ml.level(k)
            data = machine.memory[name].data
            for index, value in marks.values.items():
                data[index] = value
                n_elems += 1
    if n_elems:
        machine.charge(block.proc, Category.COMMIT, machine.costs.commit_per_elem * n_elems)
    return n_elems


def run_blocked_iterwise(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """Blocked R-LRPD with iteration-granularity commit.

    Like :func:`repro.core.rlrpd.run_blocked`, but the commit point moves
    to the exact earliest sink iteration.  Untested arrays and reductions
    are not supported at iteration granularity (partial-block commit would
    need per-iteration logs for them as well); loops using them should run
    under the processor-wise test.
    """
    config = config or RuntimeConfig.adaptive()
    if config.strategy is not Strategy.BLOCKED:
        raise ConfigurationError("run_blocked_iterwise needs a blocked strategy")
    if loop.inductions:
        raise ConfigurationError("iteration-wise test does not support inductions")
    if loop.untested_names:
        raise ConfigurationError(
            "iteration-wise commit requires all arrays tested; declare "
            f"{loop.untested_names} tested or use the processor-wise test"
        )
    if loop.reductions:
        raise ConfigurationError(
            "iteration-wise commit does not support reductions yet"
        )

    machine = Machine(n_procs, costs=costs, memory=memory or loop.materialize())
    states: dict[int, ProcessorState] = {
        p: make_processor_state(machine, loop, p) for p in range(n_procs)
    }
    tested = loop.tested_names
    ckpt: CheckpointManager | None = None

    n = loop.n_iterations
    all_procs = list(range(n_procs))
    committed_upto = 0
    stage_results: list[StageResult] = []
    sequential_work = 0.0
    final_iter_times: dict[int, float] = {}
    pending_blocks: list[Block] = []
    stage_idx = 0

    while committed_upto < n:
        if stage_idx >= config.max_stages:
            raise SpeculationError(
                f"{loop.name}: exceeded max_stages={config.max_stages}"
            )
        remaining = n - committed_upto
        if stage_idx == 0:
            blocks = partition_even(0, n, all_procs)
            redistributing = False
        else:
            policy = config.redistribution
            redistributing = policy is RedistributionPolicy.ALWAYS or (
                policy is RedistributionPolicy.ADAPTIVE
                and machine.costs.should_redistribute(remaining, n_procs)
            )
            blocks = (
                partition_even(committed_upto, n, all_procs)
                if redistributing
                else pending_blocks
            )
        nonempty = [b for b in blocks if len(b)]
        if not nonempty:
            raise SpeculationError(f"{loop.name}: empty schedule with work left")

        record = machine.begin_stage()
        charge_checkpoint_begin(machine, ckpt)
        if stage_idx > 0 and redistributing:
            redistributed = charge_redistribution(
                machine, ((b.proc, len(b)) for b in nonempty), machine.costs.ell
            )
        else:
            redistributed = 0
        marklists: dict[int, dict[str, MarkList]] = {}
        for block in nonempty:
            ml = {
                name: MarkList(name, block.proc, log_values=True)
                for name in tested
            }
            marklists[block.proc] = ml
            ctx = execute_block(
                machine, loop, states[block.proc], block, ckpt, marklists=ml
            )
            if ctx.exit_iteration is not None:
                raise ConfigurationError(
                    f"{loop.name}: premature exits need the blocked runner"
                )
            # Iteration-level marking costs an extra pass over the marks.
            extra_refs = sum(m.distinct_refs() for m in ml.values())
            machine.charge(block.proc, Category.MARK, machine.costs.mark * extra_refs)
        machine.barrier()

        sink, n_arcs = _iterwise_analysis(nonempty, marklists)
        # Iteration-level analysis scans every level, not distinct refs.
        log_p = max(1.0, math.log2(max(1, len(nonempty))))
        for block in nonempty:
            refs = sum(m.distinct_refs() for m in marklists[block.proc].values())
            machine.charge(
                block.proc, Category.ANALYSIS,
                machine.costs.analysis_per_ref * refs * log_p,
            )

        if sink is None:
            committing, partial, failing = nonempty, None, []
        else:
            committing = [b for b in nonempty if b.stop <= sink]
            partial = next((b for b in nonempty if b.start <= sink < b.stop), None)
            failing = [b for b in nonempty if b.stop > sink]

        committed_elements = commit_states(
            machine, loop, [states[b.proc] for b in committing]
        )
        stage_work = 0.0
        for block in committing:
            times, works = states[block.proc].iter_times, states[block.proc].iter_work
            for i in block.iterations():
                final_iter_times[i] = times[i]
                stage_work += works[i]
        if partial is not None and sink is not None and sink > partial.start:
            committed_elements += _commit_prefix(
                machine, loop, partial, marklists[partial.proc], sink
            )
            times, works = states[partial.proc].iter_times, states[partial.proc].iter_work
            for i in range(partial.start, sink):
                final_iter_times[i] = times[i]
                stage_work += works[i]
        sequential_work += stage_work

        reinit_states(machine, [states[b.proc] for b in failing])
        for block in committing:
            states[block.proc].reset()

        new_committed_upto = n if sink is None else sink
        if new_committed_upto <= committed_upto:
            raise NoProgressError(
                f"{loop.name}: iteration-wise stage {stage_idx} stalled at "
                f"{committed_upto}"
            )
        committed_iters = new_committed_upto - committed_upto
        committed_upto = new_committed_upto

        stage_results.append(
            StageResult(
                index=stage_idx,
                blocks=list(nonempty),
                failed=sink is not None,
                earliest_sink_pos=sink,  # an iteration, not a position
                committed_iterations=committed_iters,
                remaining_after=n - committed_upto,
                committed_work=stage_work,
                n_arcs=n_arcs,
                committed_elements=committed_elements,
                restored_elements=0,
                redistributed_iterations=redistributed,
                span=record.span(),
                breakdown=record.breakdown(),
            )
        )
        # NRD continuation: the partial block's remainder plus the failing
        # blocks re-execute in place.
        pending_blocks = []
        if partial is not None:
            pending_blocks.append(Block(partial.proc, committed_upto, partial.stop))
        pending_blocks.extend(b for b in failing if b is not partial)
        stage_idx += 1

    return RunResult(
        loop_name=loop.name,
        strategy=f"R-LRPD-iterwise({config.label()})",
        n_procs=n_procs,
        n_iterations=n,
        stages=stage_results,
        timeline=machine.timeline,
        sequential_work=sequential_work,
        iteration_times=final_iter_times,
        memory=machine.memory,
    )
