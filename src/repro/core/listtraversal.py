"""Speculative linked-list traversal distribution.

SPICE's model-evaluation loops (BJT, MOSFET, ...) iterate over *linked
lists* of devices threaded through the workspace -- there is no iteration
range to block-schedule until the list has been walked.  The paper
parallelizes them with "speculative linked list traversal distribution,
sparse LRPD test on the remainder coupled with sparse reduction
optimization" (Section 5.2, refs [21, 20]): first the traversal itself is
distributed -- the node sequence is collected with cheap pointer-chasing,
amortized over the processors -- then the per-node work is block-scheduled
over the collected sequence and run under the (sparse) LRPD test as usual.

:class:`LinkedListLoop` declares such a loop; :func:`run_list_traversal`
walks the list, synthesizes an equivalent position-indexed
:class:`~repro.loopir.loop.SpeculativeLoop` over the collected nodes, and
runs it under any configuration.  The traversal cost (one dependent load
per hop, divided by ``p`` when the distributed traversal is enabled) is
reported separately and folded into the end-to-end speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import RuntimeConfig
from repro.core.results import RunResult
from repro.core.runner import parallelize
from repro.errors import SpeculationError
from repro.loopir.context import IterationContext
from repro.loopir.loop import ArraySpec, SpeculativeLoop
from repro.loopir.reductions import ReductionOp
from repro.machine.costs import CostModel


@dataclass(frozen=True)
class LinkedListLoop:
    """A loop over a linked list of nodes.

    ``next_array`` names the (untested, read-only during the loop) pointer
    array: ``next[node]`` is the following node id, negative = end of list.
    ``body(ctx, node, position)`` does the per-node work; ``position`` is
    the node's rank in traversal order (sequential iteration number).
    """

    name: str
    head: int
    next_array: str
    body: Callable[[IterationContext, int, int], None]
    arrays: Sequence[ArraySpec]
    reductions: dict[str, ReductionOp] = field(default_factory=dict)
    max_nodes: int | None = None
    node_work: Callable[[int], float] | None = None

    def __post_init__(self) -> None:
        names = {spec.name for spec in self.arrays}
        if self.next_array not in names:
            raise ValueError(
                f"next_array {self.next_array!r} must be declared in arrays"
            )


@dataclass
class TraversalRunResult:
    """Traversal cost plus the speculative run over the collected nodes."""

    nodes: list[int]
    traversal_time: float
    run: RunResult

    @property
    def total_time(self) -> float:
        return self.traversal_time + self.run.total_time

    @property
    def speedup(self) -> float:
        """End-to-end speedup including the traversal phase."""
        total = self.total_time
        return self.run.sequential_work / total if total > 0 else 1.0

    @property
    def memory(self):
        return self.run.memory

    def summary(self) -> dict:
        out = self.run.summary()
        out["nodes"] = len(self.nodes)
        out["traversal"] = self.traversal_time
        out["T_par"] = self.total_time
        out["speedup"] = self.speedup
        return out


def walk_list(next_data, head: int, limit: int) -> list[int]:
    """Collect the node sequence; reject cycles and out-of-range pointers."""
    nodes: list[int] = []
    seen: set[int] = set()
    node = head
    while node >= 0:
        if node in seen:
            raise SpeculationError(
                f"linked list cycles back to node {node}; traversal aborted"
            )
        if node >= len(next_data):
            raise SpeculationError(
                f"next pointer {node} outside the pointer array"
            )
        if len(nodes) >= limit:
            raise SpeculationError(
                f"linked list exceeds the declared maximum of {limit} nodes"
            )
        seen.add(node)
        nodes.append(node)
        node = int(next_data[node])
    return nodes


def run_list_traversal(
    llloop: LinkedListLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    distributed_traversal: bool = True,
) -> TraversalRunResult:
    """Traverse, then speculatively parallelize the per-node loop.

    ``distributed_traversal=False`` models the naive serial walk (one
    dependent load per hop on one processor); ``True`` models the paper's
    speculative traversal distribution, which amortizes the chase over the
    processors at the price of one extra barrier.
    """
    costs = costs or CostModel()
    # Materialize once: the traversal and the speculative run must see the
    # same input state.
    derived_arrays = list(llloop.arrays)
    probe = SpeculativeLoop(
        name=llloop.name, n_iterations=0, body=lambda ctx, i: None,
        arrays=derived_arrays,
    )
    memory = probe.materialize()
    next_data = memory[llloop.next_array].data
    limit = llloop.max_nodes if llloop.max_nodes is not None else len(next_data)
    nodes = walk_list(next_data, llloop.head, limit)

    hop_cost = costs.copy_in  # one dependent (remote) load per hop
    if distributed_traversal:
        traversal_time = len(nodes) * hop_cost / n_procs + costs.sync
    else:
        traversal_time = len(nodes) * hop_cost

    node_at = list(nodes)
    body = llloop.body

    def position_body(ctx, k):
        body(ctx, node_at[k], k)

    derived = SpeculativeLoop(
        name=f"{llloop.name}[{len(nodes)} nodes]",
        n_iterations=len(nodes),
        body=position_body,
        arrays=derived_arrays,
        reductions=dict(llloop.reductions),
        iter_work=llloop.node_work,
    )
    run = parallelize(derived, n_procs, config, costs, memory=memory)
    return TraversalRunResult(
        nodes=nodes, traversal_time=traversal_time, run=run
    )
