"""The post-execution analysis phase.

After a speculative doall, the shadows of all participating processors are
analyzed for cross-processor dependences.  With block scheduling and
on-demand copy-in, the only invalidating pattern is a *flow* dependence: a
write on a lower-ranked block matched by an exposed read (read-before-local-
write) on a higher-ranked block (paper, Section 2).  The crucial R-LRPD
observation follows: all blocks strictly before the **earliest sink** of any
dependence arc executed correctly and can commit.

The analysis operates on an ordered sequence of *groups* -- ``(processor,
shadows)`` pairs in increasing iteration order -- so the same code serves
the blocked strategies (groups ordered by processor rank) and the sliding
window (groups ordered by block sequence, processors assigned circularly).

Speculative reductions are folded in here: an element is a valid reduction
only if *every* access to it in the stage is a reduction update.  Elements
with mixed reduction/ordinary marks have their updates treated as a
write-plus-exposed-read, which routes them through the normal dependence
machinery (a mixed element behaves like an ordinary read-modify-write).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.config import TestCondition
from repro.kernels import get_kernels
from repro.shadow import ShadowArray

Groups = Sequence[tuple[int, Mapping[str, ShadowArray]]]


@dataclass(frozen=True, slots=True)
class DependenceArc:
    """A cross-group flow dependence found by the analysis phase.

    Positions index the ordered group sequence, not processor ids (the
    sliding window maps positions to processors circularly).
    """

    src_pos: int
    dst_pos: int
    array: str
    index: int

    def __post_init__(self) -> None:
        if self.src_pos >= self.dst_pos:
            raise ValueError("dependence arcs point to later groups")


@dataclass(slots=True)
class StageAnalysis:
    """Outcome of analyzing one speculative stage."""

    earliest_sink_pos: int | None
    arcs: list[DependenceArc]
    distinct_refs: list[int] = field(default_factory=list)
    mixed_reduction_elements: int = 0

    @property
    def fully_parallel(self) -> bool:
        return self.earliest_sink_pos is None

    def valid_positions(self, n_groups: int) -> range:
        """Group positions whose work is certainly correct."""
        stop = self.earliest_sink_pos if self.earliest_sink_pos is not None else n_groups
        return range(stop)


def _mixed_sets(groups: Groups) -> dict[str, set[int]]:
    """Per array: elements carrying both reduction and ordinary marks.

    Reduction marks are rare -- most stages carry none -- so the scan first
    finds the arrays with any ``update`` mark (a cheap bit test per shadow)
    and returns immediately when there are none, instead of materializing
    Python sets for every shadow of every group.  For the arrays that do
    mix, shadow exports stay numpy index arrays until the final
    intersection, which is the only point a set is actually needed.
    """
    updated = {
        name
        for _, shadows in groups
        for name, shadow in shadows.items()
        if shadow.has_updates()
    }
    if not updated:
        return {}
    red: dict[str, list[np.ndarray]] = {}
    normal: dict[str, list[np.ndarray]] = {}
    for _, shadows in groups:  # hot-path: per-group scan, not per-element
        for name, shadow in shadows.items():  # hot-path: per-array scan
            if name not in updated:
                continue
            upd = shadow.update_indices()
            if len(upd):
                red.setdefault(name, []).append(upd)
            ordinary = shadow.ordinary_indices()
            if len(ordinary):
                normal.setdefault(name, []).append(ordinary)
    mixed: dict[str, set[int]] = {}
    for name, red_parts in red.items():  # hot-path: per-array scan
        normal_parts = normal.get(name)
        if not normal_parts:
            continue
        both = get_kernels().intersect_indices(
            np.concatenate(red_parts), np.concatenate(normal_parts)
        )
        if len(both):
            mixed[name] = set(map(int, both))
    return mixed


def _analyze_dense(groups: Groups) -> StageAnalysis:
    """Word-level fast path for all-dense, reduction-free stages.

    The generic path materializes Python sets of every marked element per
    group; on dense shadows the same scan is a handful of 64-bit-word
    operations per array: ``exposed & cumulative_writes`` finds conflicts,
    and element indices are only extracted for the (rare) conflicting
    words.  Semantics are identical to the generic path -- enforced by a
    hypothesis equivalence test against sparse-shadow mirrors.
    """
    from repro.shadow.dense import DenseShadow
    from repro.util.bitset import BitSet

    arcs: list[DependenceArc] = []
    cumulative: dict[str, BitSet] = {}
    write_history: dict[str, list[tuple[int, object]]] = {}
    distinct: list[int] = []
    for pos, (_proc, shadows) in enumerate(groups):  # hot-path: per-group scan
        for name, shadow in shadows.items():  # hot-path: per-array scan
            assert isinstance(shadow, DenseShadow)
            cum = cumulative.get(name)
            if cum is not None and shadow.exposed_bits.intersects(cum):
                conflicts = get_kernels().and_words_indices(
                    shadow.exposed_bits.words, cum.words, shadow.n_elements
                )
                for index in conflicts.tolist():  # hot-path: conflicting elements only
                    src = next(
                        p for p, bits in write_history[name] if bits.test(index)
                    )
                    arcs.append(DependenceArc(src, pos, name, index))
        for name, shadow in shadows.items():  # hot-path: per-array scan
            writes = shadow.write_bits
            if writes:
                if name in cumulative:
                    cumulative[name] |= writes
                else:
                    cumulative[name] = writes.copy()
                write_history.setdefault(name, []).append((pos, writes))
        distinct.append(
            sum(shadow.distinct_refs() for shadow in shadows.values())
        )
    earliest = _earliest_sink(arcs)
    return StageAnalysis(
        earliest_sink_pos=earliest,
        arcs=arcs,
        distinct_refs=distinct,
        mixed_reduction_elements=0,
    )


def _dense_eligible(groups: Groups) -> bool:
    """Fast path applies when every shadow is dense and no reduction marks
    exist (mixed-reduction reclassification needs the generic machinery)."""
    from repro.shadow.dense import DenseShadow

    for _proc, shadows in groups:  # hot-path: per-group scan, not per-element
        for shadow in shadows.values():  # hot-path: per-array scan
            if not isinstance(shadow, DenseShadow):
                return False
            if bool(shadow.update_bits):
                return False
    return True


def _earliest_sink(arcs: list[DependenceArc]) -> int | None:
    """Earliest dependence-sink position, the R-LRPD commit boundary."""
    if not arcs:
        return None
    sinks = np.fromiter((arc.dst_pos for arc in arcs), dtype=np.int64, count=len(arcs))
    return get_kernels().reduce_min_max(sinks)[0]


def analyze_stage(groups: Groups) -> StageAnalysis:
    """Find all cross-group flow arcs and the earliest sink (copy-in test).

    Groups must be given in increasing iteration order.  Cost: one pass over
    the distinct marked elements of every group (word-level on all-dense
    stages).
    """
    if _dense_eligible(groups):
        return _analyze_dense(groups)
    mixed = _mixed_sets(groups)
    arcs: list[DependenceArc] = []
    # array -> element -> earliest writing position.
    written_before: dict[str, dict[int, int]] = {}
    distinct: list[int] = []
    for pos, (_proc, shadows) in enumerate(groups):  # hot-path: per-group scan
        for name, shadow in shadows.items():  # hot-path: per-array scan
            name_mixed = mixed.get(name, set())
            exposed = shadow.exposed_read_set()
            if name_mixed:
                exposed = exposed | (shadow.update_set() & name_mixed)
            writers = written_before.get(name)
            if writers:
                # hot-path: generic (mixed-shadow) reference path; all-dense
                # stages take the kernel fast path in _analyze_dense
                for index in exposed:
                    src = writers.get(index)
                    if src is not None:
                        arcs.append(DependenceArc(src, pos, name, index))
        # Register this group's writes only after its reads were checked:
        # intra-group read/write ordering is already folded into the
        # exposed-read bit by the shadow.
        for name, shadow in shadows.items():  # hot-path: per-array scan
            name_mixed = mixed.get(name, set())
            writes = shadow.write_set()
            if name_mixed:
                writes = writes | (shadow.update_set() & name_mixed)
            if writes:
                writers = written_before.setdefault(name, {})
                # hot-path: generic (mixed-shadow) reference path
                for index in writes:
                    writers.setdefault(index, pos)
        distinct.append(
            sum(shadow.distinct_refs() for shadow in shadows.values())
        )
    earliest = _earliest_sink(arcs)
    return StageAnalysis(
        earliest_sink_pos=earliest,
        arcs=arcs,
        distinct_refs=distinct,
        mixed_reduction_elements=sum(len(v) for v in mixed.values()),
    )


def doall_valid(groups: Groups, condition: TestCondition) -> bool:
    """The classic LRPD pass/fail verdict for a single speculative doall.

    * ``COPY_IN``: valid iff no cross-group flow arc exists (anti and output
      dependences are absorbed by copy-in privatization + last-value commit).
    * ``PRIVATIZATION``: stricter original test -- valid iff no element has
      an exposed read in one group and a write in a *different* group, in
      either direction (without copy-in, a read-first element written
      elsewhere in the loop cannot be privatized).
    """
    if condition is TestCondition.COPY_IN:
        return analyze_stage(groups).fully_parallel

    mixed = _mixed_sets(groups)
    exposed_by: dict[str, dict[int, set[int]]] = {}
    written_by: dict[str, dict[int, set[int]]] = {}
    for pos, (_proc, shadows) in enumerate(groups):  # hot-path: per-group scan
        for name, shadow in shadows.items():  # hot-path: per-array scan
            name_mixed = mixed.get(name, set())
            exposed = shadow.exposed_read_set()
            writes = shadow.write_set()
            if name_mixed:
                extra = shadow.update_set() & name_mixed
                exposed = exposed | extra
                writes = writes | extra
            # hot-path: PRIVATIZATION verdict is an offline oracle, not a
            # per-stage runtime path
            for index in exposed:
                exposed_by.setdefault(name, {}).setdefault(index, set()).add(pos)
            for index in writes:  # hot-path: offline oracle (see above)
                written_by.setdefault(name, {}).setdefault(index, set()).add(pos)
    for name, element_readers in exposed_by.items():  # hot-path: offline oracle
        element_writers = written_by.get(name, {})
        for index, readers in element_readers.items():  # hot-path: offline oracle
            writers = element_writers.get(index, set())
            if writers and (len(writers | readers) > 1):
                return False
    return True
