"""Shared-memory execution backend: zero-copy data plane, struct-packed pipes.

The fork backend (:mod:`repro.core.backend`) proved the *protocol* -- one
block per processor per stage, deltas merged in block order -- but pays for
it in serialization: every dispatch pickles full memory diffs down the pipe
and every reply pickles dense private views and shadow bit planes back up.
``BENCH_host.json`` showed that cost swamping the loop work (fork at 0.5x
serial on the dense doall, 0.2x on the sparse SPICE loop).

The ``shm`` backend splits the two planes:

**Data plane** -- ``multiprocessing.shared_memory`` segments wrapped in
numpy views, mapped into the workers by fork inheritance:

* every numeric :class:`~repro.machine.memory.SharedArray` of the memory
  image is rebound onto a shared segment, so commits, restores and
  re-initializations performed by the parent are *immediately* visible to
  the workers -- no memory diff broadcast at all;
* each (processor, dense tested array) pair owns shared buffers for its
  :class:`~repro.machine.memory.DensePrivateView` storage and its four
  :class:`~repro.shadow.dense.DenseShadow` bit planes.  The parent's
  processor states are re-pointed at those buffers ("adopted"), the worker
  wraps the same buffers around fresh view/shadow objects, and the write
  happens exactly once, in place -- merging a dense view or shadow is a
  no-op;
* per-iteration timing feedback and the per-block metrics counters travel
  through dedicated scratch/slot segments instead of pickled dicts.

**Control plane** -- the pipe carries ``send_bytes`` frames of fixed-width,
struct-packed records: task descriptors down (stage, position, block range,
hoisted fault plan), per-block outcome headers up (fault/exit state, charge
vector in first-appearance order, span clocks).  Sparse residue -- sparse
view/shadow exports (already index/value arrays), reduction partials,
untested write-backs, marklists, induction values -- rides in one small
pickle blob per block, the existing delta path.

Bit-exactness follows the fork backend's argument: identical worker-side
execution (same :func:`~repro.core.executor.execute_block`, same charge
log, same checkpoint discipline), identical block-order merge in the
parent, plus the observation that dense private data needs no merge at all
because parent and worker share the storage.  The golden parity matrix
runs the full 32-case suite under ``shm``, fully instrumented.

Segment lifecycle: all segments are created by an :class:`ShmArena` whose
cleanup is registered with ``weakref.finalize`` (atexit-backed); unlink
happens before close so a crash mid-stage -- even a SIGKILLed worker --
leaves nothing behind in ``/dev/shm`` (the stdlib resource tracker remains
the net for a hard-killed parent).  The iteration-time scratch segment is
resized (allocate-new, publish via the dispatch manifest, unlink-old) when
a stage's block length outgrows it.
"""

from __future__ import annotations

import pickle
import struct
import time
import traceback
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.core.backend import (
    BACKENDS,
    BlockOutcome,
    BlockTask,
    ForkBackend,
    _AccessRecorder,
    _ChargeLog,
    _shutdown_pool,
    make_all_private_state,
    make_capture_checkpoint,
)
from repro.core import frames
from repro.core.executor import ProcessorState, execute_block, make_plain_state
from repro.errors import BackendError
from repro.kernels import get_kernels
from repro.machine.checkpoint import CheckpointManager
from repro.machine.memory import (
    DENSE_VIEW_THRESHOLD,
    DensePrivateView,
    MemoryImage,
    PrivateView,
    SharedArray,
    make_private_view,
)
from repro.machine.timeline import Category
from repro.obs.metrics import MetricsRegistry
from repro.obs.oplog import get_oplog
from repro.shadow import make_shadow
from repro.shadow.base import ShadowArray
from repro.shadow.dense import DenseShadow
from repro.util.bitset import BitSet
from repro.util.blocks import Block

# -- wire format -------------------------------------------------------------------

_MSG_RUN = 0
_MSG_EXIT = 1

#: One task descriptor: stage, pos, proc, start, stop, slowdown,
#: death_at (-1 = none), flags, residue-blob length.
_TASK = struct.Struct("<qqqqqdqBI")

_TF_DEATH_PERMANENT = 1 << 0
_TF_PRELOAD = 1 << 1
_TF_ALL_PRIVATE = 1 << 2
_TF_LOG_UNTESTED = 1 << 3
_TF_COLLECT_METRICS = 1 << 4
_TF_COLLECT_SPANS = 1 << 5
_TF_PLAIN = 1 << 6

#: One outcome header: pos, exit_iteration (-1 = none), iter_start,
#: iter_count, fault_code, fault_permanent, metrics_in_slots, n_charges,
#: host_start, host_dur, virt_dur, residue-blob length.
_DELTA = struct.Struct("<qqqqBBBBdddI")

#: One charge entry: category index, summed amount.
_CHARGE = struct.Struct("<Bd")

_FAULT_NONE = 0
_FAULT_FAIL_STOP = 1
_FAULT_OTHER = 2  # fault string rides in the residue blob

_CATEGORIES = list(Category)

# -- the shared metrics slot block --------------------------------------------------

#: Per-block metrics travel through a fixed [n_procs, _N_SLOTS] int64 slot
#: block instead of a pickled registry snapshot.  The worker-side registry
#: is only ever touched by ``SpeculativeContext.flush_metrics``, whose
#: instrument set is closed; the presence mask reproduces exactly which
#: instruments the flush created, so the parent can reconstruct a snapshot
#: dict that is byte-for-byte what the fork backend would have shipped.
_SLOT_COUNTERS = (
    "checkpoint.saved.bytes",
    "checkpoint.saved.elements",
    "exec.blocks",
    "faults.blocks_hit",
    "shadow.copy_in.bytes",
    "shadow.copy_in.elements",
    "shadow.marks",
)
_SLOT_HIST = "exec.block_iterations"
_S_HIST_COUNT = len(_SLOT_COUNTERS)
_S_HIST_TOTAL = _S_HIST_COUNT + 1
_S_HIST_MIN = _S_HIST_COUNT + 2
_S_HIST_MAX = _S_HIST_COUNT + 3
_S_MASK = _S_HIST_COUNT + 4
_N_SLOTS = _S_HIST_COUNT + 5
_MASK_HIST = 1 << len(_SLOT_COUNTERS)


def _pack_metrics(snapshot: dict, slots: np.ndarray) -> bool:
    """Encode a worker registry snapshot into one slot row.

    Returns False when the snapshot holds anything outside the fixed
    ``flush_metrics`` instrument set (or non-integral values); the caller
    then ships the snapshot through the residue blob instead.
    """
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    if snapshot.get("gauges"):
        return False
    if not set(counters) <= set(_SLOT_COUNTERS):
        return False
    if not set(histograms) <= {_SLOT_HIST}:
        return False
    mask = 0
    slots[:] = 0
    for k, name in enumerate(_SLOT_COUNTERS):
        if name in counters:
            value = counters[name]
            if not isinstance(value, int):
                return False
            mask |= 1 << k
            slots[k] = value
    hist = histograms.get(_SLOT_HIST)
    if hist is not None:
        total = hist["total"]
        if total != int(total):
            return False
        mask |= _MASK_HIST
        slots[_S_HIST_COUNT] = hist["count"]
        slots[_S_HIST_TOTAL] = int(total)
        slots[_S_HIST_MIN] = hist["min"]
        slots[_S_HIST_MAX] = hist["max"]
    slots[_S_MASK] = mask
    return True


def _unpack_metrics(slots: np.ndarray) -> dict:
    """Rebuild the snapshot dict a fork worker would have pickled."""
    mask = int(slots[_S_MASK])
    counters = {
        name: int(slots[k])
        for k, name in enumerate(_SLOT_COUNTERS)
        if mask & (1 << k)
    }
    histograms = {}
    if mask & _MASK_HIST:
        histograms[_SLOT_HIST] = {
            "count": int(slots[_S_HIST_COUNT]),
            "total": float(slots[_S_HIST_TOTAL]),
            "min": int(slots[_S_HIST_MIN]),
            "max": int(slots[_S_HIST_MAX]),
        }
    return {"counters": counters, "gauges": {}, "histograms": histograms}


# -- segment lifecycle --------------------------------------------------------------


def _shmable(data: np.ndarray) -> bool:
    """Whether an array can live in a raw shared-memory segment (numeric
    dtypes only; anything else rides the fork-style residue path)."""
    return data.dtype.kind in "biufc"


def _release_segments(segments: list) -> None:
    """Unlink-then-close every segment; safe to call twice, safe at exit.

    Unlink comes first so the ``/dev/shm`` name disappears even when close
    cannot complete (numpy views may still be alive during interpreter
    shutdown; the mapping itself dies with the process).
    """
    for seg in segments:
        try:
            seg.unlink()
        except Exception:
            pass
    for seg in segments:
        try:
            seg.close()
        except BufferError:
            pass  # exported numpy views still alive; see docstring
        except Exception:
            pass
    segments.clear()


class ShmArena:
    """Creates and owns named shared-memory segments for one backend.

    A bump allocator carves numpy views out of large chunk segments (one
    ``mmap`` per ~megabyte instead of one per buffer); standalone segments
    (the resizable iteration-time scratch) are handed out individually.
    Cleanup is registered with ``weakref.finalize`` so segments are
    unlinked even when :meth:`release` is never reached (atexit-backed);
    the stdlib resource tracker covers a hard-killed parent process.
    """

    CHUNK = 1 << 20
    ALIGN = 64

    def __init__(self) -> None:
        self._segments: list = []  # shared with the finalizer, do not rebind
        self._chunk = None
        self._offset = 0
        self._finalizer = weakref.finalize(self, _release_segments, self._segments)

    def _new_shm(self, nbytes: int):
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        self._segments.append(seg)
        return seg

    def new_segment(self, nbytes: int):
        """A dedicated (individually unlinkable) segment."""
        return self._new_shm(nbytes)

    def drop_segment(self, seg) -> None:
        """Unlink one dedicated segment early (scratch resize)."""
        if seg in self._segments:
            self._segments.remove(seg)
        _release_segments([seg])

    def alloc(self, shape, dtype) -> np.ndarray:
        """A zero-filled numpy view inside a chunk segment."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        aligned = -(-nbytes // self.ALIGN) * self.ALIGN
        if self._chunk is None or self._offset + aligned > self._chunk.size:
            self._chunk = self._new_shm(max(self.CHUNK, aligned))
            self._offset = 0
        view = np.frombuffer(
            self._chunk.buf, dtype=dtype, count=nbytes // dtype.itemsize,
            offset=self._offset,
        ).reshape(shape)
        view[...] = 0
        self._offset += aligned
        return view

    def segment_names(self) -> list[str]:
        return [seg.name for seg in self._segments]

    @property
    def total_bytes(self) -> int:
        """Bytes currently held in ``/dev/shm`` across all live segments."""
        try:
            return sum(seg.size for seg in list(self._segments))
        except (TypeError, ValueError):  # pragma: no cover - torn read
            return 0

    def release(self) -> None:
        """Unlink and close everything now; idempotent."""
        if self._segments:
            get_oplog().log(
                "shm", "arena-released",
                segments=len(self._segments), bytes=self.total_bytes,
            )
        _release_segments(self._segments)

    @property
    def released(self) -> bool:
        return not self._segments


def _attach_segment(name: str):
    """Worker-side attach to a segment created after the fork.

    The forked worker inherits the parent's resource-tracker pipe, so the
    constructor's register lands in the same tracker cache (a set) the
    parent's create already populated -- a harmless no-op.  Do *not*
    unregister here: that would remove the name from the shared cache and
    make the parent's eventual ``unlink`` trip the tracker.  The parent
    owns the lifecycle end to end.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


# -- the data-plane layout ----------------------------------------------------------


@dataclass
class _DenseBufs:
    """Shared storage for one (processor, dense tested array) pair."""

    values: np.ndarray
    have: np.ndarray
    written: np.ndarray
    planes: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    """BitSet word arrays: write, exposed, any_read, update."""


@dataclass
class _ShmPlan:
    """Everything the parent laid out in shared memory before forking."""

    arena: ShmArena
    image_names: list[str]
    """Memory-image arrays rebound onto shared segments."""
    residue_names: list[str]
    """Memory-image arrays still broadcast fork-style (non-numeric)."""
    dense_names: dict[str, int]
    """Tested arrays with shared dense view/shadow buffers -> length."""
    proc_bufs: dict[int, dict[str, _DenseBufs]]
    metrics_block: np.ndarray
    """int64 [n_procs, _N_SLOTS]; row per block position's processor."""
    scratch: np.ndarray | None = None
    """float64 [n_procs, 2, cap]: per-iteration measured/work times."""
    scratch_cap: int = 0
    scratch_seg: object = None


def _wrap_dense_view(shared: SharedArray, bufs: _DenseBufs) -> DensePrivateView:
    """A DensePrivateView over externally owned (shared) storage."""
    view = DensePrivateView.__new__(DensePrivateView)
    PrivateView.__init__(view, shared)
    view._values = bufs.values
    view._have = bufs.have
    view._written = bufs.written
    return view


def _wrap_dense_shadow(n_elements: int, bufs: _DenseBufs) -> DenseShadow:
    """A DenseShadow whose bit planes live in externally owned storage."""
    shadow = DenseShadow.__new__(DenseShadow)
    ShadowArray.__init__(shadow, n_elements)
    shadow._write = BitSet(n_elements, words=bufs.planes[0])
    shadow._exposed = BitSet(n_elements, words=bufs.planes[1])
    shadow._any_read = BitSet(n_elements, words=bufs.planes[2])
    shadow._update = BitSet(n_elements, words=bufs.planes[3])
    return shadow


def _loop_dense_names(loop, memory: MemoryImage) -> dict[str, int]:
    """Tested arrays that get shared dense buffers, with their lengths
    (same dense/sparse choice :func:`make_private_view` makes)."""
    dense: dict[str, int] = {}
    for spec in loop.arrays:
        if not spec.tested:
            continue
        data = memory[spec.name].data
        sparse = spec.sparse
        if sparse is None:
            sparse = len(data) > DENSE_VIEW_THRESHOLD
        if not sparse and _shmable(data):
            dense[spec.name] = len(data)
    return dense


# -- worker side --------------------------------------------------------------------


class _ShmWorkerContext:
    """Worker state inherited through fork (plus post-fork attachments)."""

    def __init__(
        self, loop, costs, memory, ckpt_names, on_demand, reduction_names,
        n_procs, dense_names, proc_bufs, metrics_block,
    ) -> None:
        self.loop = loop
        self.costs = costs
        self.memory = memory
        self.ckpt_names = ckpt_names
        self.on_demand = on_demand
        self.reduction_names = reduction_names
        self.n_procs = n_procs
        self.dense_names = dense_names
        self.proc_bufs = proc_bufs
        self.metrics_block = metrics_block
        self.scratch: np.ndarray | None = None
        self.scratch_cap = 0
        self._attached: list = []  # keep post-fork segments mapped

    def attach_scratch(self, name: str, cap: int) -> None:
        seg = _attach_segment(name)
        self._attached.append(seg)
        self.scratch = np.frombuffer(
            seg.buf, dtype=np.float64, count=self.n_procs * 2 * cap
        ).reshape(self.n_procs, 2, cap)
        self.scratch_cap = cap

    def make_state(self, proc: int) -> ProcessorState:
        """Fresh per-task state; dense views/shadows wrap the shared
        buffers (no allocation, no copy), the rest is private."""
        views: dict[str, PrivateView] = {}
        shadows: dict[str, ShadowArray] = {}
        bufs = self.proc_bufs[proc]
        for spec in self.loop.arrays:
            if not spec.tested:
                continue
            shared = self.memory[spec.name]
            b = bufs.get(spec.name)
            if b is not None:
                views[spec.name] = _wrap_dense_view(shared, b)
                shadows[spec.name] = _wrap_dense_shadow(len(shared), b)
            else:
                views[spec.name] = make_private_view(shared, sparse=spec.sparse)
                shadows[spec.name] = make_shadow(len(shared), sparse=spec.sparse)
        return ProcessorState(proc=proc, views=views, shadows=shadows)


def _run_shm_task(wctx: _ShmWorkerContext, task: BlockTask) -> bytes:
    """Execute one block; dense results land in shared memory, the rest
    is packed into one outcome header + residue blob."""
    log = _ChargeLog(wctx.memory, wctx.costs)
    if task.collect_metrics:
        log.metrics = MetricsRegistry()
    block = task.block
    recorder = None
    ckpt = None
    if task.all_private:
        state = make_all_private_state(log, wctx.loop, block.proc)
    elif task.plain:
        # Certified fast path: plain state, direct writes.  Image-array
        # writes land in the shared segments (parent-visible) and residue
        # writes in the fork-private copy; either way the charge-free
        # capture checkpoint records them, so they ship through the
        # uniform untested residue below and roll back locally, keeping
        # worker memory equal to the last parent broadcast.
        state = make_plain_state(block.proc)
        ckpt = make_capture_checkpoint(wctx.memory)
        if task.log_untested:
            recorder = _AccessRecorder()
    else:
        state = wctx.make_state(block.proc)
        if wctx.ckpt_names:
            ckpt = CheckpointManager(wctx.memory, wctx.ckpt_names, wctx.on_demand)
            ckpt.begin_stage()
        if task.log_untested:
            recorder = _AccessRecorder()
        if task.preload:
            state.preload(log, skip=wctx.reduction_names)
    charges_before = len(log.charges)
    host_before = time.perf_counter() if task.collect_spans else 0.0
    ctx = execute_block(
        log, wctx.loop, state, block, ckpt,
        inductions=task.inductions, marklists=task.marklists,
        stage=task.stage, untested_log=recorder,
        slowdown=task.slowdown, death=task.death,
    )
    host_dur = time.perf_counter() - host_before if task.collect_spans else 0.0
    virt_dur = (
        sum(amount for _, amount in log.charges[charges_before:])
        if task.collect_spans else 0.0
    )
    # Fold the charge log per category, first-appearance order (the same
    # order the fork backend replays, hence the same per_proc dict layout).
    charges: dict[Category, float] = {}
    for category, amount in log.charges:
        charges[category] = charges.get(category, 0.0) + amount

    residue: dict = {}
    metrics_in_slots = 0
    if task.collect_metrics:
        snapshot = log.metrics.snapshot()
        if _pack_metrics(snapshot, wctx.metrics_block[block.proc]):
            metrics_in_slots = 1
        else:  # pragma: no cover - future instruments outside the fixed set
            residue["metrics"] = snapshot

    fault_code = _FAULT_NONE
    if ctx.fault is not None:
        fault_code = _FAULT_FAIL_STOP if ctx.fault == "fail-stop" else _FAULT_OTHER
        if fault_code == _FAULT_OTHER:
            residue["fault"] = ctx.fault

    iter_start = block.start
    iter_count = 0
    if not task.all_private:
        iter_count = len(state.iter_times)
        scratch = wctx.scratch
        kernels = get_kernels()
        scratch[block.proc, 0, :iter_count] = kernels.pack_range_map(
            state.iter_times, iter_start, iter_count
        )
        scratch[block.proc, 1, :iter_count] = kernels.pack_range_map(
            state.iter_work, iter_start, iter_count
        )
        views = {
            name: view.export_written()
            for name, view in state.views.items()
            if name not in wctx.dense_names and view.n_written()
        }
        if views:
            residue["views"] = views
        shadows = {
            name: shadow.export_marks()
            for name, shadow in state.shadows.items()
            if name not in wctx.dense_names and not shadow.is_clear()
        }
        if shadows:
            residue["shadows"] = shadows
        partials = {name: dict(p) for name, p in state.partials.items() if p}
        if partials:
            residue["partials"] = partials
        if ckpt is not None:
            untested = {}
            for name, indices in ckpt.modified_by([block.proc]).items():
                if indices:
                    idx = np.asarray(indices, dtype=np.int64)
                    untested[name] = (idx, get_kernels().gather(wctx.memory[name].data, idx))
            if untested:
                residue["untested"] = untested
            # Undo this block's untested writes: with the image in shared
            # memory they are already parent-visible, but the merge phase
            # replays them through the parent's checkpoint manager so it
            # learns the true old values -- the memory must hold those old
            # values until the parent's note_write has read them.
            ckpt.restore_failed([block.proc])
        if recorder is not None:
            residue["untested_reads"] = sorted(recorder.reads)
            residue["untested_writes"] = sorted(recorder.writes)
        if task.marklists is not None:
            residue["marklists"] = task.marklists
    inductions = ctx.induction_values()
    if inductions or task.inductions is not None:
        residue["inductions"] = inductions

    blob = frames.pack_residue(residue)
    out = bytearray(
        _DELTA.pack(
            task.pos,
            -1 if ctx.exit_iteration is None else ctx.exit_iteration,
            iter_start,
            iter_count,
            fault_code,
            1 if ctx.fault_permanent else 0,
            metrics_in_slots,
            len(charges),
            host_before,
            host_dur,
            virt_dur,
            len(blob),
        )
    )
    for category, amount in charges.items():
        out += _CHARGE.pack(_CATEGORIES.index(category), amount)
    out += blob
    return bytes(out)


def _parse_dispatch(wctx: _ShmWorkerContext, payload: bytes) -> list[BlockTask]:
    """Decode one dispatch frame; applies manifest + residue updates."""
    off = 1
    (n_manifest,) = struct.unpack_from("<B", payload, off)
    off += 1
    for _ in range(n_manifest):
        cap, name_len = struct.unpack_from("<qH", payload, off)
        off += struct.calcsize("<qH")
        name = payload[off:off + name_len].decode("ascii")
        off += name_len
        wctx.attach_scratch(name, cap)
    (updates_len,) = struct.unpack_from("<I", payload, off)
    off += 4
    if updates_len:
        updates = pickle.loads(payload[off:off + updates_len])
        off += updates_len
        for name, data in updates.items():
            wctx.memory[name].data[:] = data
    (n_tasks,) = struct.unpack_from("<I", payload, off)
    off += 4
    tasks = []
    for _ in range(n_tasks):
        (stage, pos, proc, start, stop, slowdown, death_at, flags, blob_len) = (
            _TASK.unpack_from(payload, off)
        )
        off += _TASK.size
        extras = {}
        if blob_len:
            extras = frames.unpack_task_extras(payload, off, blob_len)
            off += blob_len
        tasks.append(
            BlockTask(
                stage=stage,
                pos=pos,
                block=Block(proc, start, stop),
                inductions=extras.get("inductions"),
                marklists=extras.get("marklists"),
                preload=bool(flags & _TF_PRELOAD),
                all_private=bool(flags & _TF_ALL_PRIVATE),
                log_untested=bool(flags & _TF_LOG_UNTESTED),
                slowdown=slowdown,
                death=(
                    None if death_at < 0
                    else (death_at, bool(flags & _TF_DEATH_PERMANENT))
                ),
                collect_metrics=bool(flags & _TF_COLLECT_METRICS),
                collect_spans=bool(flags & _TF_COLLECT_SPANS),
                plain=bool(flags & _TF_PLAIN),
            )
        )
    return tasks


def _shm_worker_main(conn, wctx: _ShmWorkerContext) -> None:  # pragma: no cover - child
    try:
        while True:
            try:
                payload = conn.recv_bytes()
            except EOFError:
                return
            if not payload or payload[0] == _MSG_EXIT:
                return
            tasks = _parse_dispatch(wctx, payload)
            deltas = [_run_shm_task(wctx, task) for task in tasks]
            reply = bytearray(struct.pack("<BI", 0, len(deltas)))
            for delta in deltas:
                reply += delta
            conn.send_bytes(bytes(reply))
    except (EOFError, KeyboardInterrupt):
        return
    except BaseException:
        tb = traceback.format_exc().encode("utf-8", "replace")
        try:
            conn.send_bytes(struct.pack("<BI", 1, len(tb)) + tb)
        except Exception:
            pass


# -- parsed reply -------------------------------------------------------------------


@dataclass
class _ShmDelta:
    pos: int
    exit_iteration: int | None
    iter_start: int
    iter_count: int
    fault_code: int
    fault_permanent: bool
    metrics_in_slots: bool
    charges: list[tuple[Category, float]]
    host_start: float
    host_dur: float
    virt_dur: float
    residue: dict = field(default_factory=dict)


def _parse_reply(payload: bytes) -> list[_ShmDelta]:
    status, count = struct.unpack_from("<BI", payload, 0)
    off = struct.calcsize("<BI")
    if status != 0:
        raise _ShmWorkerFailure(payload[off:].decode("utf-8", "replace"))
    deltas = []
    for _ in range(count):
        (
            pos, exit_iter, iter_start, iter_count, fault_code,
            fault_permanent, metrics_in_slots, n_charges,
            host_start, host_dur, virt_dur, blob_len,
        ) = _DELTA.unpack_from(payload, off)
        off += _DELTA.size
        charges = []
        for _ in range(n_charges):
            cat_idx, amount = _CHARGE.unpack_from(payload, off)
            off += _CHARGE.size
            charges.append((_CATEGORIES[cat_idx], amount))
        residue = {}
        if blob_len:
            residue = frames.unpack_residue(payload, off, blob_len)
            off += blob_len
        deltas.append(
            _ShmDelta(
                pos=pos,
                exit_iteration=None if exit_iter < 0 else exit_iter,
                iter_start=iter_start,
                iter_count=iter_count,
                fault_code=fault_code,
                fault_permanent=bool(fault_permanent),
                metrics_in_slots=bool(metrics_in_slots),
                charges=charges,
                host_start=host_start,
                host_dur=host_dur,
                virt_dur=virt_dur,
                residue=residue,
            )
        )
    return deltas


class _ShmWorkerFailure(Exception):
    pass


# -- the backend --------------------------------------------------------------------


class ShmBackend(ForkBackend):
    """Forked workers over a shared-memory data plane (see module doc)."""

    name = "shm"

    _worker_target = staticmethod(_shm_worker_main)

    def __init__(self, eng) -> None:
        super().__init__(eng)
        self._plan: _ShmPlan | None = None
        self._adopted: dict[int, ProcessorState] = {}
        self._manifest: list[tuple[str, int]] = []
        self._untested_snapshot: dict[str, np.ndarray] = {}

    # -- setup ---------------------------------------------------------------------

    def _build_plan(self) -> _ShmPlan:
        eng = self.eng
        memory = eng.machine.memory
        arena = ShmArena()
        image_names: list[str] = []
        residue_names: list[str] = []
        for name in memory.names():
            sa = memory[name]
            if _shmable(sa.data):
                view = arena.alloc(sa.data.shape, sa.data.dtype)
                view[:] = sa.data
                sa.data = view  # parent writes are now worker-visible
                image_names.append(name)
            else:
                residue_names.append(name)
        dense_names = _loop_dense_names(eng.loop, memory)
        proc_bufs: dict[int, dict[str, _DenseBufs]] = {}
        for proc in range(eng.n_procs):
            bufs: dict[str, _DenseBufs] = {}
            for name, n in dense_names.items():
                dtype = memory[name].data.dtype
                n_words = (n + 63) // 64
                bufs[name] = _DenseBufs(
                    values=arena.alloc((n,), dtype),
                    have=arena.alloc((n,), bool),
                    written=arena.alloc((n,), bool),
                    planes=tuple(
                        arena.alloc((n_words,), np.uint64) for _ in range(4)
                    ),
                )
            proc_bufs[proc] = bufs
        metrics_block = arena.alloc((eng.n_procs, _N_SLOTS), np.int64)
        return _ShmPlan(
            arena=arena,
            image_names=image_names,
            residue_names=residue_names,
            dense_names=dense_names,
            proc_bufs=proc_bufs,
            metrics_block=metrics_block,
        )

    def _make_wctx(self) -> _ShmWorkerContext:
        eng = self.eng
        self._plan = plan = self._build_plan()
        get_oplog().log(
            "shm", "arena-created",
            segments=len(plan.arena.segment_names()),
            bytes=plan.arena.total_bytes,
        )
        memory = eng.machine.memory
        worker_arrays = []
        for name in memory.names():
            sa = SharedArray.__new__(SharedArray)
            sa.name = name
            # Shared segments are shared with the parent; residue arrays
            # get a fork-private copy kept fresh by the diff broadcast.
            sa.data = (
                memory[name].data
                if name in set(plan.image_names)
                else memory[name].data.copy()
            )
            worker_arrays.append(sa)
        self._last_sync = {
            name: memory[name].data.copy() for name in plan.residue_names
        }
        return _ShmWorkerContext(
            loop=eng.loop,
            costs=eng.machine.costs,
            memory=MemoryImage(worker_arrays),
            ckpt_names=eng.ckpt.names if eng.ckpt is not None else [],
            on_demand=eng.config.on_demand_checkpoint,
            reduction_names=eng.reduction_names,
            n_procs=eng.n_procs,
            dense_names=plan.dense_names,
            proc_bufs=plan.proc_bufs,
            metrics_block=plan.metrics_block,
        )

    def _ensure_scratch(self, cap_needed: int) -> list[tuple[str, int]]:
        """Grow (or first-allocate) the iteration-time scratch; returns the
        manifest entries to publish to the workers this dispatch."""
        plan = self._plan
        if cap_needed <= plan.scratch_cap:
            return []
        cap = 64
        while cap < cap_needed:
            cap *= 2
        nbytes = self.eng.n_procs * 2 * cap * 8
        seg = plan.arena.new_segment(nbytes)
        old = plan.scratch_seg
        plan.scratch = np.frombuffer(
            seg.buf, dtype=np.float64, count=self.eng.n_procs * 2 * cap
        ).reshape(self.eng.n_procs, 2, cap)
        plan.scratch_cap = cap
        plan.scratch_seg = seg
        if old is not None:
            # Workers switch before touching scratch (the manifest rides in
            # front of the tasks in the same frame); existing mappings stay
            # valid after the unlink, the name just vanishes.
            plan.arena.drop_segment(old)
        return [(seg.name, cap)]

    # -- state adoption ---------------------------------------------------------

    def _adopt_states(self, tasks: list[BlockTask]) -> None:
        """Re-point the parent's dense views/shadows at the shared buffers.

        Strategies may recreate processor states between stages (the
        induction recipe does), so adoption is re-checked per dispatch:
        a not-yet-adopted state has its current contents copied into the
        shared buffers (fresh states carry zeros, so this doubles as the
        reset) and its storage slots swapped in place.
        """
        eng = self.eng
        for task in tasks:
            if task.all_private or task.plain:
                # Plain states own no views/shadows to re-point.
                continue
            proc = task.block.proc
            state = eng.states[proc]
            for name, bufs in self._plan.proc_bufs[proc].items():
                view = state.views[name]
                if view._values is not bufs.values:
                    np.copyto(bufs.values, view._values)
                    np.copyto(bufs.have, view._have)
                    np.copyto(bufs.written, view._written)
                    view._values = bufs.values
                    view._have = bufs.have
                    view._written = bufs.written
                shadow = state.shadows[name]
                if shadow.write_bits.words is not bufs.planes[0]:
                    planes = (
                        shadow.write_bits, shadow.exposed_bits,
                        shadow.any_read_bits, shadow.update_bits,
                    )
                    for words, bits in zip(bufs.planes, planes):
                        np.copyto(words, bits.words)
                    n = shadow.n_elements
                    shadow._write = BitSet(n, words=bufs.planes[0])
                    shadow._exposed = BitSet(n, words=bufs.planes[1])
                    shadow._any_read = BitSet(n, words=bufs.planes[2])
                    shadow._update = BitSet(n, words=bufs.planes[3])
            self._adopted[proc] = state

    def _unadopt_states(self) -> None:
        """Move adopted states back onto private heap storage (close time:
        the segments are about to be unlinked and unmapped, and callers may
        keep inspecting the states afterwards)."""
        for proc, state in self._adopted.items():
            bufs_by_name = self._plan.proc_bufs.get(proc, {})
            for name, bufs in bufs_by_name.items():
                view = state.views.get(name)
                if view is not None and view._values is bufs.values:
                    view._values = view._values.copy()
                    view._have = view._have.copy()
                    view._written = view._written.copy()
                shadow = state.shadows.get(name)
                if shadow is not None and shadow.write_bits.words is bufs.planes[0]:
                    shadow._write = shadow._write.copy()
                    shadow._exposed = shadow._exposed.copy()
                    shadow._any_read = shadow._any_read.copy()
                    shadow._update = shadow._update.copy()
        self._adopted.clear()

    # -- dispatch ---------------------------------------------------------------

    def _residue_updates(self) -> dict[str, np.ndarray]:
        memory = self.eng.machine.memory
        updates: dict[str, np.ndarray] = {}
        for name in self._plan.residue_names:
            data = memory[name].data
            last = self._last_sync.get(name)
            if last is None or not np.array_equal(last, data):
                updates[name] = data.copy()
                self._last_sync[name] = updates[name]
        return updates

    def _pack_dispatch(
        self, tasks: list[BlockTask], manifest: list[tuple[str, int]],
        updates: dict[str, np.ndarray],
    ) -> bytes:
        buf = bytearray(struct.pack("<BB", _MSG_RUN, len(manifest)))
        for name, cap in manifest:
            raw = name.encode("ascii")
            buf += struct.pack("<qH", cap, len(raw))
            buf += raw
        blob = (
            pickle.dumps(updates, protocol=pickle.HIGHEST_PROTOCOL)
            if updates else b""
        )
        buf += struct.pack("<I", len(blob))
        buf += blob
        buf += struct.pack("<I", len(tasks))
        for task in tasks:
            extras = {}
            if task.inductions is not None:
                extras["inductions"] = task.inductions
            if task.marklists is not None:
                extras["marklists"] = task.marklists
            task_blob = frames.pack_task_extras(extras)
            flags = 0
            death_at = -1
            if task.death is not None:
                death_at = task.death[0]
                if task.death[1]:
                    flags |= _TF_DEATH_PERMANENT
            if task.preload:
                flags |= _TF_PRELOAD
            if task.all_private:
                flags |= _TF_ALL_PRIVATE
            if task.log_untested:
                flags |= _TF_LOG_UNTESTED
            if task.collect_metrics:
                flags |= _TF_COLLECT_METRICS
            if task.collect_spans:
                flags |= _TF_COLLECT_SPANS
            if task.plain:
                flags |= _TF_PLAIN
            buf += _TASK.pack(
                task.stage, task.pos, task.block.proc,
                task.block.start, task.block.stop,
                task.slowdown, death_at, flags, len(task_blob),
            )
            buf += task_blob
        return bytes(buf)

    # -- supervision hooks -------------------------------------------------------

    def _begin_dispatch(self, tasks: list[BlockTask]) -> None:
        self._adopt_states(tasks)
        self._manifest = self._ensure_scratch(
            max(
                (len(task.block) for task in tasks if not task.all_private),
                default=1,
            )
        )
        self._updates = self._residue_updates()
        self._snapshot_untested(tasks)

    def _snapshot_untested(self, tasks: list[BlockTask]) -> None:
        """Copy the checkpointed (untested) shared arrays at dispatch time.

        Live workers undo their own untested writes before replying
        (``ckpt.restore_failed`` in :func:`_run_shm_task`), so at the
        reply barrier the shared image equals this snapshot *except* for
        dirt left by workers that died mid-share.  Wholesale restore is
        therefore exactly the lost workers' rollback.

        Plain (certified fast path) tasks write *any* image array
        directly -- ``eng.ckpt`` is None on those runs -- so the snapshot
        widens to the whole image whenever the dispatch carries one.
        """
        eng = self.eng
        memory = eng.machine.memory
        if any(task.plain for task in tasks):
            names = list(memory.names())
        else:
            names = eng.ckpt.names if eng.ckpt is not None else []
        self._untested_snapshot = {
            name: memory[name].data.copy() for name in names
        }

    def _send_share(self, k: int, share: list[BlockTask], fresh: bool) -> None:
        _, conn = self._workers[k]
        if fresh:
            # A respawned worker forked off the *current* parent: shared
            # segments arrive live, but its private residue copies date
            # from pool build time and its scratch mapping may name a
            # dropped segment -- resend both in full.
            plan = self._plan
            memory = self.eng.machine.memory
            manifest = (
                [(plan.scratch_seg.name, plan.scratch_cap)]
                if plan.scratch_seg is not None
                else []
            )
            updates = {
                name: memory[name].data.copy() for name in plan.residue_names
            }
        else:
            manifest = self._manifest
            updates = self._updates
        conn.send_bytes(self._pack_dispatch(share, manifest, updates))

    def _recv_share(self, k: int, share: list[BlockTask]):
        _, conn = self._workers[k]
        reply = conn.recv_bytes()
        try:
            return _parse_reply(reply)
        except _ShmWorkerFailure as failure:
            raise BackendError(
                f"{self._share_context(k, share)} raised:\n{failure}",
                loop=self.eng.loop.name,
            ) from None

    def _recover_shared_state(self, procs: list[int]) -> None:
        """Scrub shared state a lost worker may have dirtied mid-share.

        Untested arrays roll back wholesale to the dispatch snapshot (see
        :meth:`_snapshot_untested`).  The lost processors' dense view and
        shadow buffers are zeroed: processor states are clear at dispatch
        time (reset/reinitialize clear them in place, and fresh states
        adopt as zeros), so cleared buffers *are* the dispatch state."""
        memory = self.eng.machine.memory
        for name, data in self._untested_snapshot.items():
            memory[name].data[:] = data
        for proc in sorted(set(procs)):
            for bufs in self._plan.proc_bufs.get(proc, {}).values():
                bufs.values[...] = 0
                bufs.have[...] = False
                bufs.written[...] = False
                for plane in bufs.planes:
                    plane[...] = 0

    # -- merge ------------------------------------------------------------------

    def _merge(self, task: BlockTask, delta: _ShmDelta) -> BlockOutcome:
        """Fold one outcome into the engine, in block-position order.

        Dense private views and shadows need no action -- the worker wrote
        the parent's own (adopted) buffers in place.  Everything else
        mirrors the fork backend's merge exactly.
        """
        eng = self.eng
        machine = eng.machine
        block = task.block
        proc = block.proc
        residue = delta.residue
        for category, amount in delta.charges:
            machine.charge(proc, category, amount)
        if task.collect_metrics:
            if delta.metrics_in_slots:
                snapshot = _unpack_metrics(self._plan.metrics_block[proc])
            else:  # pragma: no cover - residue fallback
                snapshot = residue.get("metrics", {})
            machine.metrics.merge(snapshot)
        fault = None
        if delta.fault_code == _FAULT_FAIL_STOP:
            fault = "fail-stop"
        elif delta.fault_code == _FAULT_OTHER:  # pragma: no cover - defensive
            fault = residue.get("fault", "unknown")
        outcome = BlockOutcome(
            pos=task.pos, block=block, fault=fault,
            fault_permanent=delta.fault_permanent,
            exit_iteration=delta.exit_iteration,
            inductions=residue.get("inductions", {}),
        )
        if task.collect_spans:
            outcome.host_start = eng.rebase_host(delta.host_start)
            outcome.host_dur = delta.host_dur
            outcome.virt_dur = delta.virt_dur
        if task.all_private:
            return outcome
        state = eng.states[proc]
        for name, payload in residue.get("views", {}).items():
            state.views[name].absorb_written(payload)
        for name, payload in residue.get("shadows", {}).items():
            state.shadows[name].absorb_marks(payload)
        for name, partial in residue.get("partials", {}).items():
            state.partials.setdefault(name, {}).update(partial)
        if delta.iter_count:
            span = range(delta.iter_start, delta.iter_start + delta.iter_count)
            scratch = self._plan.scratch
            state.iter_times.update(
                zip(span, scratch[proc, 0, : delta.iter_count].tolist())
            )
            state.iter_work.update(
                zip(span, scratch[proc, 1, : delta.iter_count].tolist())
            )
        state.executed.append(block)
        for name, (indices, values) in residue.get("untested", {}).items():
            if eng.ckpt is not None:
                eng.ckpt.note_write_many(proc, name, indices)
            get_kernels().scatter(machine.memory[name].data, indices, values)
        if eng.untested_log is not None:
            for name, index in residue.get("untested_reads", ()):
                eng.untested_log.note_read(proc, name, index)
            for name, index in residue.get("untested_writes", ()):
                eng.untested_log.note_write(proc, name, index)
        if task.marklists is not None:
            eng.strategy.install_marklists(
                eng, task.pos, block, residue.get("marklists")
            )
        return outcome

    def resource_info(self) -> dict:
        """Fork's pids/inflight plus the arena's ``/dev/shm`` footprint."""
        info = super().resource_info()
        plan = self._plan
        if plan is not None:
            info["shm_bytes"] = plan.arena.total_bytes
        return info

    # -- teardown ---------------------------------------------------------------

    def close(self) -> None:
        if self._workers is not None:
            workers, self._workers = self._workers, None
            get_oplog().log(
                "backend", "pool-closed", backend=self.name,
                workers=len(workers),
            )
            _shutdown_pool(workers, lambda conn: conn.send_bytes(bytes([_MSG_EXIT])))
        # The retained worker context (respawn template) holds numpy views
        # into the segments; drop them before the arena unlinks, or the
        # SharedMemory objects could never close their mappings.
        self._wctx = None
        self._supervisor = None
        self._updates = {}
        self._untested_snapshot = {}
        plan = self._plan
        if plan is None:
            return
        # Move every externally visible numpy view back onto the heap
        # before the segments are unlinked and unmapped: the run result
        # keeps using the memory image, tests keep poking the states.
        self._unadopt_states()
        self._plan = None
        memory = self.eng.machine.memory
        for name in plan.image_names:
            sa = memory[name]
            sa.data = sa.data.copy()
        plan.scratch = None
        plan.metrics_block = None
        plan.proc_bufs = None
        plan.arena.release()


BACKENDS[ShmBackend.name] = ShmBackend
