"""The StageEngine: one owner for the speculate→analyze→commit lifecycle.

Every R-LRPD flavor is the same recursion -- execute speculatively, find
the earliest cross-processor dependence sink, commit the valid prefix,
restore and retry the rest -- differing only in *policy*: how remaining
iterations are scheduled, where failed work re-executes, what granularity
the commit point moves at, and what pre/post phases wrap a stage.  The
engine implements the recursion exactly once:

* partition/schedule the remaining iterations (delegated to the strategy);
* checkpoint untested state, execute every block under fault injection;
* analyze for the earliest sink, merge injected faults into the failure
  point, validate premature exits;
* commit the valid prefix, restore and re-initialize the rest;
* charge every virtual-time cost, enforce ``max_fault_retries`` over
  consecutive zero-commit stages, shrink the processor pool on permanent
  fail-stop deaths, and run the ``--self-check`` oracle.

Strategies are small policy objects subclassing :class:`Strategy` and
registered by name (:func:`register_strategy`); the concrete policies live
next to their documentation: ``BlockedNRD``/``BlockedRD``/``AdaptiveBlocked``
in :mod:`repro.core.rlrpd`, ``SlidingWindow`` in :mod:`repro.core.window`,
``InductionTwoPhase`` in :mod:`repro.core.induction_runner`, and
``IterwiseBlocked`` in :mod:`repro.core.iterwise`.

The engine narrates each run as a typed event stream (:mod:`repro.obs`):
``RunBegin (StageBegin BlockExecuted* FaultInjected* DependenceFound?
(Commit|Retry) Restore? StageEnd)+ RunEnd``.  An
:class:`~repro.obs.sinks.AggregatingSink` subscribed to that stream is
what populates the result's per-stage records, so traces and results can
never disagree; a JSONL trace sink is attached whenever
``config.trace_path`` is set.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.config import (
    RedistributionPolicy,
    RuntimeConfig,
    Strategy as ScheduleKind,
)
from repro.core.analysis import analyze_stage
from repro.core.backend import (
    BACKENDS,
    BlockTask,
    backend_names,
    make_backend,
    resolve_backend_name,
)
from repro.core.commit import commit_states, reinit_states
from repro.core.executor import make_processor_state
from repro.core.results import RunResult, StageResult
from repro.core.supervise import (
    DEGRADATION_ORDER,
    PoolDegradation,
    SupervisionStats,
)
from repro.kernels import resolve_kernels_name, use_kernels
from repro.core.stage import (
    charge_analysis,
    charge_checkpoint_begin,
    charge_checkpoint_fault_recovery,
    committed_work,
    perform_restore,
)
from repro.errors import (
    ConfigurationError,
    FaultError,
    NoProgressError,
    SpeculationError,
)
from repro.faults.injector import FaultInjector
from repro.faults.selfcheck import UntestedAccessLog, check_final_state
from repro.loopir.loop import SpeculativeLoop
from repro.machine.checkpoint import CheckpointManager
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage
from repro.machine.topology import Topology
from repro.obs.events import (
    BackendDegraded,
    BlockExecuted,
    Commit,
    DependenceFound,
    FaultInjected,
    MetricsSnapshot,
    Restore,
    Retry,
    RunBegin,
    RunEnd,
    StageBegin,
    StageEnd,
)
from repro.obs.flight import FlightRecorder, dump_bundle, resolve_crash_dir
from repro.obs.metrics import (
    MetricsRegistry,
    resolve_metrics_enabled,
    resolve_spans_enabled,
)
from repro.obs.oplog import get_oplog
from repro.obs.resources import ResourceSampler, resolve_resources_enabled
from repro.obs.sinks import AggregatingSink, EventBus, EventSink, JsonlTraceSink
from repro.obs.spans import PerfettoTraceSink, SpanTracker
from repro.obs.top import StatusStreamSink
from repro.util.blocks import Block


class Strategy:
    """Policy object supplying what differs between R-LRPD flavors.

    The defaults implement the processor-wise blocked behavior; a strategy
    overrides only the hooks where its policy departs from it.  Hooks are
    invoked by :class:`StageEngine` in a fixed order per stage::

        schedule -> pre_stage -> [begin_stage] -> charge_schedule ->
        begin_stage_states -> (before_block -> execute -> after_block)* ->
        [barrier] -> analyze -> adjust_sink -> on_failure_point ->
        commit -> advance -> after_stage

    Strategies may keep per-run mutable state on ``self``; one instance
    serves exactly one engine run.
    """

    #: Registry key (``register_strategy`` requires it to be non-empty).
    name = ""
    #: How a premature ``ctx.exit_loop()`` is treated: ``"collect"``
    #: validates it against the failure point (blocked drivers),
    #: ``"reject"`` raises ``ConfigurationError``, ``"ignore"`` drops it.
    exit_mode = "reject"
    #: Noun used in the FaultError raised when the zero-commit retry
    #: budget is exhausted ("stages" / "windows").
    zero_noun = "stages"
    #: Certified fast paths set this: blocks run on plain processor
    #: states (no views/shadows/checkpoint) and out-of-process backends
    #: dispatch them as ``plain`` tasks (:mod:`repro.core.fastpath`).
    plain_tasks = False

    # -- lifecycle hooks -------------------------------------------------------

    def validate(self, loop: SpeculativeLoop, config: RuntimeConfig) -> None:
        """Reject loop/config combinations this strategy cannot run."""

    def setup(self, eng: "StageEngine") -> None:
        """One-time per-run state; default: private state per processor."""
        eng.states = {
            p: make_processor_state(eng.machine, eng.loop, p)
            for p in range(eng.n_procs)
        }

    def run_label(self, eng: "StageEngine") -> str:
        return eng.config.label()

    def schedule(self, eng: "StageEngine") -> list[Block]:
        """Non-empty blocks for this stage (raise SpeculationError if none)."""
        raise NotImplementedError

    def pre_stage(self, eng: "StageEngine", blocks: list[Block]) -> None:
        """Optional extra phase before the speculative stage (e.g. the
        induction recipe's range-collection doall), emitted as its own
        stage."""

    def charge_schedule(
        self, eng: "StageEngine", blocks: list[Block]
    ) -> tuple[int, float]:
        """Charge scheduling/redistribution costs; return
        ``(migrated iterations, migration distance)``."""
        return 0, 0.0

    def begin_stage_states(self, eng: "StageEngine", blocks: list[Block]) -> None:
        """Refresh per-stage private state (default: states persist)."""

    def before_block(self, eng: "StageEngine", block: Block) -> None:
        if eng.config.pre_initialize:
            eng.states[block.proc].preload(eng.machine, skip=eng.reduction_names)

    def wants_preload(self, eng: "StageEngine") -> bool:
        """Whether out-of-process backends should bulk pre-initialize each
        block's private views before executing (must mirror what
        :meth:`before_block` does in-process)."""
        return eng.config.pre_initialize

    def exec_kwargs(self, eng: "StageEngine", pos: int, block: Block) -> dict:
        """Extra keyword arguments for ``execute_block``."""
        return {}

    def after_block(self, eng: "StageEngine", pos: int, block: Block, ctx) -> None:
        """Bookkeeping right after one block executed (owner maps, extra
        marking charges, induction finals).  ``ctx`` is a
        :class:`~repro.core.backend.BlockOutcome`: ``fault``,
        ``fault_permanent``, ``exit_iteration``, ``induction_values()``."""

    def install_marklists(
        self, eng: "StageEngine", pos: int, block: Block, marklists
    ) -> None:
        """Accept a block's mark lists shipped back by an out-of-process
        backend (only strategies passing ``marklists`` via
        :meth:`exec_kwargs` need this)."""
        raise ConfigurationError(
            f"strategy {self.name!r} does not accept shipped mark lists"
        )

    def analyze(
        self, eng: "StageEngine", blocks: list[Block]
    ) -> tuple[int | None, int]:
        """Run the dependence test; charge it; return
        ``(earliest sink block position | None, n_arcs)``."""
        groups = [(b.proc, eng.states[b.proc].shadows) for b in blocks]
        analysis = analyze_stage(groups)
        charge_analysis(eng.machine, analysis, [b.proc for b in blocks])
        return analysis.earliest_sink_pos, len(analysis.arcs)

    def adjust_sink(
        self, eng: "StageEngine", blocks: list[Block], f_pos: int | None
    ) -> int | None:
        """Fold strategy-specific failure conditions (e.g. induction
        increment mismatches) into the failure point."""
        return f_pos

    def on_failure_point(
        self,
        eng: "StageEngine",
        blocks: list[Block],
        f_pos: int | None,
        fault_forced: bool,
    ) -> None:
        """Observe the merged failure point before the commit phase."""

    def sink_field(self, eng: "StageEngine", f_pos: int | None) -> int | None:
        """Value recorded as ``StageResult.earliest_sink_pos`` (block
        position by default; the iteration-wise test reports an iteration)."""
        return f_pos

    def partial_progress(
        self, eng: "StageEngine", blocks: list[Block], f_pos: int | None
    ) -> bool:
        """Whether the stage advances the commit point even though no block
        commits wholesale (iteration-granularity prefix commit)."""
        return False

    def commit(
        self, eng: "StageEngine", committing: list[Block], failing: list[Block]
    ) -> tuple[int, float]:
        """Copy out the valid prefix; return ``(elements, stage work)``."""
        committed_elements = commit_states(
            eng.machine, eng.loop, [eng.states[b.proc] for b in committing]
        )
        stage_work = committed_work(eng.states, committing)
        for block in committing:
            times = eng.states[block.proc].iter_times
            for i in block.iterations():
                eng.final_iter_times[i] = times[i]
        return committed_elements, stage_work

    def advance(self, eng: "StageEngine", committing: list[Block]) -> int:
        return committing[-1].stop

    def committed_iterations(
        self, eng: "StageEngine", committing: list[Block], advance: int
    ) -> int:
        return sum(len(b) for b in committing)

    def zero_commit_message(self, eng: "StageEngine", f_pos: int | None) -> str:
        return (
            f"{eng.loop.name}: stage {eng.stage_idx} committed nothing "
            f"(earliest sink at position {f_pos})"
        )

    def advance_stall_message(self, eng: "StageEngine") -> str:
        return (
            f"{eng.loop.name}: stage {eng.stage_idx} failed to advance "
            "the commit point"
        )

    def after_stage(
        self,
        eng: "StageEngine",
        committing: list[Block],
        failing: list[Block],
        f_pos: int | None,
    ) -> None:
        """Post-commit policy updates (pending blocks, window re-grid,
        induction base advance)."""

    def after_zero_commit(self, eng: "StageEngine", failing: list[Block]) -> None:
        """Policy updates after a fault-caused zero-commit retry."""

    def result_extras(self, eng: "StageEngine") -> dict:
        """Extra ``RunResult`` constructor fields (e.g. induction finals)."""
        return {}


# -- strategy registry ----------------------------------------------------------

STRATEGIES: dict[str, type[Strategy]] = {}


def register_strategy(cls: type[Strategy]) -> type[Strategy]:
    """Class decorator: make ``cls`` resolvable by its ``name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    STRATEGIES[cls.name] = cls
    return cls


def _ensure_registered() -> None:
    # Strategies live next to their documentation in the driver modules;
    # importing them populates the registry.
    import repro.core.induction_runner  # noqa: F401
    import repro.core.iterwise  # noqa: F401
    import repro.core.rlrpd  # noqa: F401
    import repro.core.window  # noqa: F401


def strategy_names() -> list[str]:
    _ensure_registered()
    return sorted(STRATEGIES)


def resolve_strategy(name: str) -> type[Strategy]:
    """Look a strategy class up by registry name."""
    _ensure_registered()
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown strategy {name!r}; registered: {', '.join(sorted(STRATEGIES))}"
        ) from None


def strategy_for_config(
    loop: SpeculativeLoop, config: RuntimeConfig
) -> Strategy:
    """The strategy a (loop, config) pair dispatches to.

    Loops with induction variables need the two-phase recipe; otherwise the
    configured schedule kind (and, for blocked, redistribution policy)
    selects the registered policy object.
    """
    _ensure_registered()
    if loop.inductions:
        return STRATEGIES["induction"]()
    if config.strategy is ScheduleKind.SLIDING_WINDOW:
        return STRATEGIES["sw"]()
    key = {
        RedistributionPolicy.NEVER: "nrd",
        RedistributionPolicy.ALWAYS: "rd",
        RedistributionPolicy.ADAPTIVE: "adaptive",
    }[config.redistribution]
    return STRATEGIES[key]()


def require_fault_support(config: RuntimeConfig | None, runner: str) -> None:
    """Refuse fault injection / self-check on runners that ignore them.

    Engine-based strategies all support both; baselines that bypass the
    engine (the doall LRPD test, DDG extraction) call this so a requested
    ``--faults``/``--self-check`` fails loudly instead of silently doing
    nothing.
    """
    if config is None:
        return
    if config.fault_plan is not None:
        raise ConfigurationError(
            f"{runner} does not support fault injection; drop the fault "
            "plan or use an engine-based strategy "
            f"({', '.join(strategy_names())})"
        )
    if config.self_check:
        raise ConfigurationError(
            f"{runner} does not support --self-check; drop it or use an "
            f"engine-based strategy ({', '.join(strategy_names())})"
        )


def require_serial_backend(config: RuntimeConfig | None, runner: str) -> None:
    """Refuse non-serial execution backends on runners that bypass the
    StageEngine (the doall LRPD test, DDG extraction): they call
    ``execute_block`` directly and would silently run serially while the
    user believes the fork pool is active.
    """
    if config is None:
        return
    if resolve_backend_name(config) != "serial":
        raise ConfigurationError(
            f"{runner} runs outside the StageEngine and supports only the "
            f"serial execution backend (requested "
            f"{resolve_backend_name(config)!r}; known: "
            f"{', '.join(backend_names())}); drop --backend or use an "
            f"engine-based strategy ({', '.join(strategy_names())})"
        )


# -- the engine ------------------------------------------------------------------


class StageEngine:
    """Run one loop instantiation under one strategy.

    Owns the machine, the speculative processor states, checkpointing,
    fault injection, the self-check oracle and the event bus; consults the
    strategy only at the policy hooks.  Construct and call :meth:`run`.
    """

    def __init__(
        self,
        loop: SpeculativeLoop,
        n_procs: int,
        strategy: Strategy,
        config: RuntimeConfig,
        costs: CostModel | None = None,
        weights: np.ndarray | None = None,
        memory: MemoryImage | None = None,
        topology: Topology | None = None,
        sinks: Sequence[EventSink] = (),
        certificate=None,
    ) -> None:
        strategy.validate(loop, config)
        self.loop = loop
        #: Certificate that selected (or merely annotated) this run, when
        #: the certification front-end examined the loop (surfaced on the
        #: RunResult; never enters the deterministic event stream).
        self.certificate = certificate
        self.n_procs = n_procs
        self.strategy = strategy
        self.config = config
        self.weights = weights
        self.topology = topology
        self.machine = Machine(
            n_procs, costs=costs, memory=memory or loop.materialize(),
            topology=topology,
        )
        untested = loop.untested_names
        self.ckpt = (
            CheckpointManager(self.machine.memory, untested,
                              config.on_demand_checkpoint)
            if untested else None
        )
        self.injector = (
            FaultInjector(config.fault_plan) if config.fault_plan else None
        )
        self.untested_log = (
            UntestedAccessLog() if (config.self_check and untested) else None
        )
        self.initial_state = (
            self.machine.memory.snapshot() if config.self_check else None
        )

        self.n = loop.n_iterations
        self.alive = list(range(n_procs))
        self.reduction_names = frozenset(loop.reductions)
        self.committed_upto = 0
        self.sequential_work = 0.0
        self.final_iter_times: dict[int, float] = {}
        self.stage_idx = 0
        self.retries = 0
        self.degraded_stages = 0
        self.zero_commit_streak = 0
        self.exit_iteration: int | None = None
        self.remaining = self.n
        self.degraded = False
        self.faulted: dict[int, str] = {}
        self.states = {}

        self.kernels_name = resolve_kernels_name(config)
        self.metrics_enabled = resolve_metrics_enabled(config)
        self.spans_enabled = resolve_spans_enabled(config)
        if self.metrics_enabled:
            self.machine.metrics = MetricsRegistry()

        strategy.setup(self)
        self.label = strategy.run_label(self)
        self.supervision = SupervisionStats()
        if config.os_chaos is not None:
            from repro.faults.os_chaos import OsChaosInjector

            self.os_chaos = OsChaosInjector(config.os_chaos)
        else:
            self.os_chaos = None
        self.backend = make_backend(self)

        # Operational plane (repro.obs oplog/flight/resources/top): host
        # telemetry that must never enter the deterministic event stream.
        self.oplog = get_oplog()
        self.flight = (
            FlightRecorder(config.flight_events)
            if config.flight_events else None
        )
        self._status = (
            StatusStreamSink(config.status_path)
            if config.status_path else None
        )
        self.sampler = (
            ResourceSampler(self, interval=config.resource_interval)
            if resolve_resources_enabled(config) else None
        )
        self._oplog_taps: list = []

        self._agg = AggregatingSink()
        bus_sinks: list[EventSink] = [self._agg, *sinks]
        if self.flight is not None:
            bus_sinks.append(self.flight)
        if self._status is not None:
            bus_sinks.append(self._status)
        if config.trace_path:
            bus_sinks.append(JsonlTraceSink(config.trace_path))
        self._perfetto = (
            PerfettoTraceSink(config.perfetto_path)
            if config.perfetto_path else None
        )
        if self._perfetto is not None:
            bus_sinks.append(self._perfetto)
        self.bus = EventBus(bus_sinks)

        self._host_t0 = time.perf_counter()
        self.tracer = (
            SpanTracker(
                self.emit, self.host_now, self.machine.timeline.virtual_now
            )
            if self.spans_enabled else None
        )
        self._stage_span = None

    # -- clocks -----------------------------------------------------------------

    def host_now(self) -> float:
        """Host wall-clock seconds since this engine started its run."""
        return time.perf_counter() - self._host_t0

    def rebase_host(self, absolute: float) -> float:
        """Convert an absolute ``perf_counter`` reading (e.g. taken inside a
        fork worker) to the run-relative host clock."""
        return absolute - self._host_t0

    # -- event plumbing ---------------------------------------------------------

    def emit(self, event) -> None:
        self.bus.emit(event)

    def _emit_metrics(self, scope: str, stage: int | None) -> None:
        snap = self.machine.metrics.snapshot()
        self.emit(MetricsSnapshot(
            scope=scope, stage=stage,
            virt_time=self.machine.timeline.virtual_now(),
            counters=snap["counters"], gauges=snap["gauges"],
            histograms=snap["histograms"],
        ))

    def _end_stage(self, result: StageResult) -> None:
        """Close the open stage: emit the stage's metrics snapshot, close
        its span, emit StageEnd (the aggregating sink files the result) and
        advance the stage counter."""
        if self.metrics_enabled:
            self._emit_metrics("stage", result.index)
        if self._stage_span is not None:
            self.tracer.end(self._stage_span)
            self._stage_span = None
        self.emit(StageEnd(stage=result.index, result=result))
        self.stage_idx += 1

    # -- supervised execution ---------------------------------------------------

    def execute_tasks(self, tasks):
        """Run one doall's blocks, degrading the backend if its pool dies.

        Nothing is merged until a backend's ``run_blocks`` returns, so on
        :class:`PoolDegradation` the same task list re-runs on the fallback
        backend from identical engine state -- results stay bit-identical,
        only the execution substrate changes.  The chain is finite
        (shm -> fork -> serial) and serial cannot degrade, so this loop
        always terminates.
        """
        while True:
            try:
                return self.backend.run_blocks(tasks)
            except PoolDegradation as degradation:
                self._degrade_backend(degradation)

    def _degrade_backend(self, degradation: PoolDegradation) -> None:
        target = DEGRADATION_ORDER[self.backend.name]
        self.supervision.degradations.append({
            "stage": degradation.stage,
            "from": self.backend.name,
            "to": target,
            "reason": str(degradation),
        })
        self.emit(BackendDegraded(
            stage=degradation.stage if degradation.stage is not None
            else self.stage_idx,
            from_backend=self.backend.name,
            to_backend=target,
            reason=degradation.reason,
        ))
        self.oplog.log(
            "engine", "backend-degraded", severity="warn",
            loop=self.loop.name,
            stage=degradation.stage if degradation.stage is not None
            else self.stage_idx,
            from_backend=self.backend.name, to_backend=target,
            reason=degradation.reason,
        )
        old = self.backend
        self.backend = None
        try:
            # shm's close() copies the (already recovered) shared image
            # and adopted state buffers back onto the heap before the
            # segments unlink -- exactly the fallback backend's input.
            old.close()
        finally:
            self.backend = BACKENDS[target](self)

    # -- run --------------------------------------------------------------------

    def run(self) -> RunResult:
        # The kernels scope covers worker forking (workers spawn lazily on
        # the first dispatch), so fork/shm children inherit the run's choice.
        with use_kernels(self.kernels_name):
            return self._run()

    def _run(self) -> RunResult:
        # RunBegin sits inside the try: whatever raises after this point --
        # the emit itself included -- still reaches the finally, so sinks
        # flush a usable partial trace instead of stranding buffered lines.
        self._begin_ops()
        try:
            self._host_t0 = time.perf_counter()
            self.emit(RunBegin(
                loop=self.loop.name, strategy=self.label,
                n_procs=self.n_procs, n_iterations=self.n,
            ))
            run_span = (
                self.tracer.begin("run", "run") if self.tracer else None
            )
            result = self._run_loop()
            if self.metrics_enabled:
                self._emit_metrics("run", None)
            if run_span is not None:
                self.tracer.end(run_span)
            self.emit(RunEnd(
                loop=self.loop.name, strategy=self.label,
                stages=result.n_stages, restarts=result.n_restarts,
                total_time=result.total_time,
                sequential_work=result.sequential_work,
                exit_iteration=result.exit_iteration,
                faults_survived=result.faults_survived,
                retries=result.retries,
            ))
            self.oplog.log(
                "engine", "run-end", loop=self.loop.name,
                backend=self.backend.name, stages=result.n_stages,
                restarts=result.n_restarts,
                host_s=round(self.host_now(), 6),
            )
            return result
        except BaseException as exc:
            # The backend (and its pool state) is still alive here; take
            # the post-mortem before the finally tears anything down.
            self._record_failure(exc)
            raise
        finally:
            self._end_ops()
            try:
                self.bus.close()
            finally:
                self.backend.close()

    # -- operational plane -------------------------------------------------------

    def _begin_ops(self) -> None:
        """Open the operational plane: subscribe the flight recorder and
        status stream to the oplog and the resource sampler, start the
        sampler thread, announce the run."""
        for consumer in (self.flight, self._status):
            if consumer is not None:
                self.oplog.add_tap(consumer.note_oplog)
                self._oplog_taps.append(consumer.note_oplog)
                if self.sampler is not None:
                    self.sampler.add_consumer(consumer.note_resources)
        if self.sampler is not None:
            self.sampler.start()
        self.oplog.log(
            "engine", "run-begin", loop=self.loop.name, strategy=self.label,
            backend=self.backend.name, n_procs=self.n_procs,
            n_iterations=self.n, kernels=self.kernels_name,
        )

    def _end_ops(self) -> None:
        """Close the operational plane: stop the sampler, hand its samples
        to the Perfetto exporter (counter tracks merge at close, outside
        the deterministic stream), detach the oplog taps."""
        if self.sampler is not None:
            self.sampler.stop()
            if self._perfetto is not None:
                self._perfetto.set_resource_samples(list(self.sampler.samples))
        for tap in self._oplog_taps:
            self.oplog.remove_tap(tap)
        self._oplog_taps = []

    def _record_failure(self, exc: BaseException) -> None:
        """Operational post-mortem for an uncaught failure: one final
        resource sample, a ``run-failed`` oplog record (which the flight
        recorder's ring captures), and -- when a crash directory is
        configured -- a crash bundle.  Must never mask ``exc``."""
        try:
            if self.sampler is not None:
                self.sampler.sample_now()
            backend = self.backend
            state = {
                "backend": backend.name if backend is not None else None,
                "stage": self.stage_idx,
                "committed_upto": self.committed_upto,
                "n_iterations": self.n,
                "alive_procs": list(self.alive),
            }
            if self.supervision.active:
                state["supervision"] = self.supervision.snapshot()
            self.oplog.log(
                "engine", "run-failed", severity="error",
                loop=self.loop.name,
                error=f"{type(exc).__name__}: {exc}",
                stage=self.stage_idx, committed_upto=self.committed_upto,
            )
            crash_dir = resolve_crash_dir(self.config)
            if self.flight is not None and crash_dir:
                path = dump_bundle(
                    self.flight, crash_dir,
                    error=exc, config=self.config, state=state,
                )
                if path:
                    self.oplog.log("engine", "crash-bundle-written", path=path)
        except Exception:  # pragma: no cover - post-mortem must not mask exc
            pass

    def _run_loop(self) -> RunResult:
        loop, config, machine = self.loop, self.config, self.machine
        strategy = self.strategy
        n = self.n
        while self.committed_upto < n:
            if self.stage_idx >= config.max_stages:
                raise SpeculationError(
                    f"{loop.name}: exceeded max_stages={config.max_stages}"
                )
            self.remaining = n - self.committed_upto
            self.degraded = len(self.alive) < self.n_procs
            if self.degraded:
                self.degraded_stages += 1

            blocks = strategy.schedule(self)
            strategy.pre_stage(self, blocks)
            stage = self.stage_idx
            self.emit(StageBegin(
                stage=stage, blocks=list(blocks),
                remaining=n - self.committed_upto, degraded=self.degraded,
            ))

            # -- checkpoint + execute under fault injection ---------------------
            record = machine.begin_stage()
            tracer = self.tracer
            if tracer is not None:
                self._stage_span = tracer.begin("stage", "stage", stage=stage)
                ckpt_span = tracer.begin("checkpoint", "phase", stage=stage)
            charge_checkpoint_begin(machine, self.ckpt, self.injector, stage)
            redistributed, migration = strategy.charge_schedule(self, blocks)
            if tracer is not None:
                tracer.end(ckpt_span)
            if self.untested_log is not None:
                self.untested_log.reset()
            strategy.begin_stage_states(self, blocks)
            exits: dict[int, int] = {}  # block position -> exit iteration
            faulted: dict[int, str] = {}  # block position -> fault class
            self.faulted = faulted
            preload = strategy.wants_preload(self)
            log_untested = self.untested_log is not None
            tasks = []
            for pos, block in enumerate(blocks):
                kwargs = strategy.exec_kwargs(self, pos, block)
                tasks.append(BlockTask(
                    stage=stage, pos=pos, block=block,
                    inductions=kwargs.pop("inductions", None),
                    marklists=kwargs.pop("marklists", None),
                    extras=kwargs,
                    preload=preload,
                    log_untested=log_untested,
                    plain=strategy.plain_tasks,
                ))
            if tracer is not None:
                exec_span = tracer.begin("execute", "phase", stage=stage)
            outcomes = self.execute_tasks(tasks)
            for outcome in outcomes:
                pos, block = outcome.pos, outcome.block
                strategy.after_block(self, pos, block, outcome)
                if outcome.fault is not None:
                    # A faulted block's work (and any exit it signalled) is
                    # untrusted; its processor joins the failed set below.
                    faulted[pos] = outcome.fault
                    if outcome.fault_permanent and len(self.alive) > 1:
                        self.alive.remove(block.proc)
                        self.injector.mark_dead(block.proc)
                elif (
                    self.injector is not None
                    and self.injector.corrupt(
                        stage, block.proc, self.states[block.proc]
                    ) is not None
                ):
                    # Corrupted speculative write, caught by the stage's
                    # integrity check: discard the block's private state and
                    # re-execute, same as a failed-speculation processor.
                    faulted[pos] = "corrupt-write"
                elif outcome.exit_iteration is not None:
                    if strategy.exit_mode == "collect":
                        exits[pos] = outcome.exit_iteration
                    elif strategy.exit_mode == "reject":
                        raise ConfigurationError(
                            f"{loop.name}: premature exits need the blocked runner"
                        )
                self.emit(BlockExecuted(
                    stage=stage, pos=pos, proc=block.proc,
                    start=block.start, stop=block.stop,
                    fault=faulted.get(pos),
                    exit_iteration=outcome.exit_iteration,
                ))
                if pos in faulted:
                    self.emit(FaultInjected(
                        stage=stage, proc=block.proc, fault=faulted[pos],
                    ))
                    # Operational echo: faults are deterministic events,
                    # but an operator tailing the oplog should see them
                    # next to the supervisor/backend records they explain.
                    self.oplog.log(
                        "faults", "fault-injected", severity="warn",
                        loop=loop.name, stage=stage, proc=block.proc,
                        fault=faulted[pos],
                    )
                if tracer is not None:
                    # Block spans interleave with BlockExecuted in block
                    # order; every block starts at the execute phase's
                    # virtual start (blocks run concurrently in virtual
                    # time).
                    tracer.block_span(
                        stage, block.proc,
                        outcome.host_start, outcome.host_dur,
                        exec_span.virt_start, outcome.virt_dur,
                    )
            machine.barrier()
            charge_checkpoint_fault_recovery(machine, self.ckpt, self.injector, stage)
            if tracer is not None:
                tracer.end(exec_span)

            # -- analyze --------------------------------------------------------
            if tracer is not None:
                analyze_span = tracer.begin("analyze", "phase", stage=stage)
            f_pos, n_arcs = strategy.analyze(self, blocks)
            if self.untested_log is not None:
                self.untested_log.verify(loop.name, stage)
            f_pos = strategy.adjust_sink(self, blocks, f_pos)
            if tracer is not None:
                tracer.end(analyze_span)

            # The effective failure point folds injected faults into the
            # recursion: everything from the first faulted block on
            # re-executes, exactly like blocks past the earliest sink.
            fault_pos = min(faulted) if faulted else None
            fault_forced = fault_pos is not None and (
                f_pos is None or fault_pos < f_pos
            )
            if fault_forced:
                f_pos = fault_pos
                # The fault (not a data dependence) set the failure point,
                # so this stage's re-execution is charged to fault recovery.
                self.retries += 1
                if self.metrics_enabled:
                    machine.metrics.counter("faults.forced_retries").inc()
            strategy.on_failure_point(self, blocks, f_pos, fault_forced)
            faulted_procs = sorted(blocks[pos].proc for pos in faulted)
            self.emit(DependenceFound(
                stage=stage, earliest_sink_pos=strategy.sink_field(self, f_pos),
                n_arcs=n_arcs, fault_forced=fault_forced,
            ))

            # -- premature exit (DCDCMP loop 70 style) --------------------------
            # An exit is trustworthy only if its processor's own work is:
            # its block must lie strictly before the earliest failure point.
            valid_exits = {
                pos: e for pos, e in exits.items()
                if f_pos is None or pos < f_pos
            }
            if valid_exits:
                return self._commit_exit(
                    blocks, valid_exits, stage, record, n_arcs,
                    redistributed, migration, faulted_procs,
                )

            committing = blocks if f_pos is None else blocks[:f_pos]
            failing = [] if f_pos is None else blocks[f_pos:]
            if not committing and not strategy.partial_progress(self, blocks, f_pos):
                # The lowest-ranked block can never be an analysis sink, so
                # a zero-commit stage is provably fault-caused: roll
                # everything back and retry, up to the configured bound.
                if fault_pos != 0:
                    raise NoProgressError(strategy.zero_commit_message(self, f_pos))
                self.zero_commit_streak += 1
                if self.zero_commit_streak > config.max_fault_retries:
                    raise FaultError(
                        f"gave up after {self.zero_commit_streak} consecutive "
                        f"zero-progress {strategy.zero_noun} wiped out by "
                        "injected faults "
                        f"(max_fault_retries={config.max_fault_retries})",
                        loop=loop.name,
                        stage=stage,
                        proc=blocks[0].proc,
                    )
                self.emit(Retry(stage=stage, streak=self.zero_commit_streak))
                if self.metrics_enabled:
                    machine.metrics.counter("faults.zero_commit_retries").inc()
                if tracer is not None:
                    restore_span = tracer.begin("restore", "phase", stage=stage)
                restored = perform_restore(
                    machine, self.ckpt, [b.proc for b in failing]
                )
                reinit_states(machine, [self.states[b.proc] for b in failing])
                if tracer is not None:
                    tracer.end(restore_span)
                if failing:
                    self.emit(Restore(
                        stage=stage, elements=restored,
                        procs=[b.proc for b in failing],
                    ))
                self._end_stage(StageResult(
                    index=stage,
                    blocks=list(blocks),
                    failed=True,
                    earliest_sink_pos=strategy.sink_field(self, f_pos),
                    committed_iterations=0,
                    remaining_after=n - self.committed_upto,
                    committed_work=0.0,
                    n_arcs=n_arcs,
                    committed_elements=0,
                    restored_elements=restored,
                    redistributed_iterations=redistributed,
                    span=record.span(),
                    migration_distance=migration,
                    breakdown=record.breakdown(),
                    faulted_procs=faulted_procs,
                    degraded=self.degraded,
                    redispatched_procs=self.supervision.take_stage_redispatched(),
                ))
                strategy.after_zero_commit(self, failing)
                continue
            self.zero_commit_streak = 0

            # -- commit / restore / re-init -------------------------------------
            if tracer is not None:
                commit_span = tracer.begin("commit", "phase", stage=stage)
            committed_elements, stage_work = strategy.commit(self, committing, failing)
            self.sequential_work += stage_work
            restored = perform_restore(machine, self.ckpt, [b.proc for b in failing])
            reinit_states(machine, [self.states[b.proc] for b in failing])
            for block in committing:
                self.states[block.proc].reset()  # committed data is shared now
            if tracer is not None:
                tracer.end(commit_span)

            advance = strategy.advance(self, committing)
            if advance <= self.committed_upto:
                raise NoProgressError(strategy.advance_stall_message(self))
            committed_iters = strategy.committed_iterations(self, committing, advance)
            self.committed_upto = advance
            self.emit(Commit(
                stage=stage, iterations=committed_iters,
                elements=committed_elements, work=stage_work,
                committed_upto=advance,
            ))
            if failing:
                self.emit(Restore(
                    stage=stage, elements=restored,
                    procs=[b.proc for b in failing],
                ))
            self._end_stage(StageResult(
                index=stage,
                blocks=list(blocks),
                failed=f_pos is not None,
                earliest_sink_pos=strategy.sink_field(self, f_pos),
                committed_iterations=committed_iters,
                remaining_after=n - self.committed_upto,
                committed_work=stage_work,
                n_arcs=n_arcs,
                committed_elements=committed_elements,
                restored_elements=restored,
                redistributed_iterations=redistributed,
                span=record.span(),
                migration_distance=migration,
                breakdown=record.breakdown(),
                faulted_procs=faulted_procs,
                degraded=self.degraded,
                redispatched_procs=self.supervision.take_stage_redispatched(),
            ))
            strategy.after_stage(self, committing, failing, f_pos)

        return self._finalize()

    def _commit_exit(
        self,
        blocks: list[Block],
        valid_exits: dict[int, int],
        stage: int,
        record,
        n_arcs: int,
        redistributed: int,
        migration: float,
        faulted_procs: list[int],
    ) -> RunResult:
        """Commit up to and including a validated premature exit; done."""
        machine, loop = self.machine, self.loop
        if self.tracer is not None:
            commit_span = self.tracer.begin(
                "commit", "phase", stage=stage
            )
        pos_e = min(valid_exits)
        e = valid_exits[pos_e]
        exit_block = blocks[pos_e]
        committing = blocks[:pos_e]
        committed_elements = commit_states(
            machine, loop,
            [self.states[b.proc] for b in committing]
            + [self.states[exit_block.proc]],
        )
        stage_work = committed_work(self.states, committing)
        for block in committing:
            times = self.states[block.proc].iter_times
            for i in block.iterations():
                self.final_iter_times[i] = times[i]
        prefix = range(exit_block.start, e + 1)
        times = self.states[exit_block.proc].iter_times
        works = self.states[exit_block.proc].iter_work
        for i in prefix:
            self.final_iter_times[i] = times[i]
            stage_work += works[i]
        self.sequential_work += stage_work
        discarded = blocks[pos_e + 1 :]
        restored = perform_restore(machine, self.ckpt, [b.proc for b in discarded])
        reinit_states(machine, [self.states[b.proc] for b in discarded])
        if self.tracer is not None:
            self.tracer.end(commit_span)
        committed_iters = (e + 1) - self.committed_upto
        self.emit(Commit(
            stage=stage, iterations=committed_iters,
            elements=committed_elements, work=stage_work, committed_upto=e + 1,
        ))
        if discarded:
            self.emit(Restore(
                stage=stage, elements=restored,
                procs=[b.proc for b in discarded],
            ))
        self._end_stage(StageResult(
            index=stage,
            blocks=list(blocks),
            failed=False,
            earliest_sink_pos=None,
            committed_iterations=committed_iters,
            remaining_after=0,
            committed_work=stage_work,
            n_arcs=n_arcs,
            committed_elements=committed_elements,
            restored_elements=restored,
            redistributed_iterations=redistributed,
            span=record.span(),
            migration_distance=migration,
            breakdown=record.breakdown(),
            faulted_procs=faulted_procs,
            degraded=self.degraded,
            redispatched_procs=self.supervision.take_stage_redispatched(),
        ))
        self.exit_iteration = e
        return self._finalize()

    def _finalize(self) -> RunResult:
        if self.config.self_check:
            check_final_state(self.loop, self.machine.memory, self.initial_state)
        result = RunResult(
            loop_name=self.loop.name,
            strategy=self.label,
            n_procs=self.n_procs,
            n_iterations=self.n,
            stages=self._agg.stages,
            timeline=self.machine.timeline,
            sequential_work=self.sequential_work,
            iteration_times=self.final_iter_times,
            memory=self.machine.memory,
            exit_iteration=self.exit_iteration,
            kernels=self.kernels_name,
            backend=self.backend.name,
            thread_mode=getattr(self.backend, "thread_mode", None),
            certificate=self.certificate,
            **self.strategy.result_extras(self),
        )
        if self.metrics_enabled:
            result.metrics = self.machine.metrics.snapshot()
        if self.supervision.active:
            result.supervision = self.supervision.snapshot()
        if self.injector is not None:
            result.retries = self.retries
            result.faults_survived = self.injector.total_injected
            result.fault_counts = self.injector.counts()
            result.degraded_stages = self.degraded_stages
            result.dead_procs = sorted(self.injector.dead)
        return result
