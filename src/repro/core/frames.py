"""Typed array frames for the shm data plane's sparse residue.

The shared-memory backend keeps dense private views, shadow bit planes and
per-iteration scratch in shared segments; everything else -- sparse private
views, sparse shadow marks, reduction partials, untested-write captures,
the self-check access log, mark lists, induction finals and fault strings
-- used to travel as one pickle blob per block.  This module replaces that
blob with a self-describing binary frame built from struct-packed headers
and raw numpy array payloads, so a steady-state sparse run moves **zero
pickle** over the pipes (enforced by ``tests/test_shm_frames.py``).

Frame grammar (all integers little-endian)::

    frame    := u32 n_sections, section*
    section  := u8 kind, u16 key_len, key utf-8, payload[kind]
    array    := u8 dtype_len, dtype.str ascii, u64 count, raw bytes

One section per top-level residue key, so presence round-trips exactly
(an *empty* ``inductions`` dict is distinct from an absent one -- the
executor treats them differently).  Values that do not fit the typed
forms (non-numeric dtypes, oversized ints, exotic objects) fall back to a
single pickle section carrying just those keys; steady-state numeric
workloads never hit it.

Bit-identity notes: reduction-partial and logged mark-list values are
re-materialized as numpy scalars of the framed dtype.  Python floats frame
to ``float64`` losslessly, Python ints to ``int64`` (overflow falls back
to pickle), and every downstream consumer applies the same element-wise
cast a scalar ``data[index] = value`` would -- the golden parity matrix
runs serial vs fork vs shm to hold this equivalence.
"""

from __future__ import annotations

import pickle  # fallback section only; never used on the steady-state plane
import struct

import numpy as np

from repro.shadow.marklist import MarkList
from repro.util.bitset import BitSet

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")

_K_PICKLE = 0
_K_NAMED_ARRAYS = 1  # dict[str, (indices, values)] -- views / untested
_K_SHADOWS = 2       # dict[str, sparse 4-array or dense 4-plane payload]
_K_PARTIALS = 3      # dict[str, dict[int, scalar]]
_K_PAIR_LIST = 4     # sorted list[(name, index)] -- self-check access log
_K_INDUCTIONS = 5    # dict[str, int]
_K_FAULT = 6         # str
_K_MARKLISTS = 7     # dict[str, MarkList]

_SHADOW_SPARSE = 0
_SHADOW_DENSE = 1


class _Unframeable(Exception):
    """Raised when a value needs the pickle fallback section."""


# -- atoms ---------------------------------------------------------------------


def _put_str(buf: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    buf += _U16.pack(len(raw))
    buf += raw


def _get_str(payload: bytes, off: int) -> tuple[str, int]:
    (n,) = _U16.unpack_from(payload, off)
    off += _U16.size
    return payload[off:off + n].decode("utf-8"), off + n


def _put_array(buf: bytearray, arr: np.ndarray) -> None:
    arr = np.ascontiguousarray(arr)
    if arr.ndim != 1 or arr.dtype.kind not in "biufc":
        raise _Unframeable(f"cannot frame array with dtype {arr.dtype}")
    dt = arr.dtype.str.encode("ascii")
    buf += _U8.pack(len(dt))
    buf += dt
    buf += _U64.pack(arr.shape[0])
    buf += arr.tobytes()


def _get_array(payload: bytes, off: int) -> tuple[np.ndarray, int]:
    (dt_len,) = _U8.unpack_from(payload, off)
    off += _U8.size
    dtype = np.dtype(payload[off:off + dt_len].decode("ascii"))
    off += dt_len
    (count,) = _U64.unpack_from(payload, off)
    off += _U64.size
    arr = np.frombuffer(payload, dtype=dtype, count=count, offset=off)
    return arr, off + count * dtype.itemsize


def _put_index_array(buf: bytearray, indices) -> None:
    _put_array(buf, np.fromiter(indices, dtype=np.int64, count=len(indices)))


def _frame_scalars(values: list) -> np.ndarray:
    """Pack a list of numeric scalars, preserving numeric dtype; Python
    floats/ints land on float64/int64 (the cast every consumer applies
    anyway).  Anything else -- including bools, whose arithmetic semantics
    differ -- is unframeable."""
    if any(isinstance(v, bool) or isinstance(v, np.bool_) for v in values):
        raise _Unframeable("bool scalars")
    try:
        arr = np.array(values)
    except (ValueError, OverflowError) as exc:
        raise _Unframeable(str(exc)) from None
    if arr.ndim != 1 or arr.dtype.kind not in "iuf":
        raise _Unframeable(f"cannot frame scalars as dtype {arr.dtype}")
    return arr


# -- per-kind payloads ----------------------------------------------------------


def _pack_named_arrays(buf: bytearray, mapping: dict) -> None:
    buf += _U32.pack(len(mapping))
    for name in sorted(mapping):
        indices, values = mapping[name]
        _put_str(buf, name)
        _put_array(buf, np.asarray(indices, dtype=np.int64))
        _put_array(buf, values)


def _unpack_named_arrays(payload: bytes, off: int) -> tuple[dict, int]:
    (n,) = _U32.unpack_from(payload, off)
    off += _U32.size
    out = {}
    for _ in range(n):
        name, off = _get_str(payload, off)
        indices, off = _get_array(payload, off)
        values, off = _get_array(payload, off)
        out[name] = (indices, values)
    return out, off


def _pack_shadows(buf: bytearray, shadows: dict) -> None:
    buf += _U32.pack(len(shadows))
    for name in sorted(shadows):
        payload = shadows[name]
        _put_str(buf, name)
        if (
            isinstance(payload, tuple)
            and len(payload) == 4
            and all(isinstance(p, BitSet) for p in payload)
        ):
            buf += _U8.pack(_SHADOW_DENSE)
            buf += _U64.pack(payload[0].size)
            for plane in payload:
                _put_array(buf, plane.words)
        elif (
            isinstance(payload, tuple)
            and len(payload) == 4
            and all(isinstance(p, np.ndarray) for p in payload)
        ):
            buf += _U8.pack(_SHADOW_SPARSE)
            for plane in payload:
                _put_array(buf, np.asarray(plane, dtype=np.int64))
        else:
            raise _Unframeable(f"unknown shadow payload for {name!r}")


def _unpack_shadows(payload: bytes, off: int) -> tuple[dict, int]:
    (n,) = _U32.unpack_from(payload, off)
    off += _U32.size
    out = {}
    for _ in range(n):
        name, off = _get_str(payload, off)
        (subkind,) = _U8.unpack_from(payload, off)
        off += _U8.size
        if subkind == _SHADOW_DENSE:
            (size,) = _U64.unpack_from(payload, off)
            off += _U64.size
            planes = []
            for _ in range(4):
                words, off = _get_array(payload, off)
                planes.append(BitSet(size, words=words))
            out[name] = tuple(planes)
        else:
            planes = []
            for _ in range(4):
                plane, off = _get_array(payload, off)
                planes.append(plane)
            out[name] = tuple(planes)
    return out, off


def _pack_partials(buf: bytearray, partials: dict) -> None:
    buf += _U32.pack(len(partials))
    for name in sorted(partials):
        partial = partials[name]
        order = sorted(partial)
        _put_str(buf, name)
        _put_index_array(buf, order)
        _put_array(buf, _frame_scalars([partial[i] for i in order]))


def _unpack_partials(payload: bytes, off: int) -> tuple[dict, int]:
    (n,) = _U32.unpack_from(payload, off)
    off += _U32.size
    out = {}
    for _ in range(n):
        name, off = _get_str(payload, off)
        indices, off = _get_array(payload, off)
        values, off = _get_array(payload, off)
        out[name] = dict(zip(indices.tolist(), values))
    return out, off


def _pack_pair_list(buf: bytearray, pairs: list) -> None:
    by_name: dict[str, list[int]] = {}
    for name, index in pairs:
        by_name.setdefault(name, []).append(int(index))
    buf += _U32.pack(len(by_name))
    # Sorted name order with sorted indices rebuilds the flat sorted list.
    for name in sorted(by_name):
        _put_str(buf, name)
        _put_index_array(buf, sorted(by_name[name]))


def _unpack_pair_list(payload: bytes, off: int) -> tuple[list, int]:
    (n,) = _U32.unpack_from(payload, off)
    off += _U32.size
    out: list[tuple[str, int]] = []
    for _ in range(n):
        name, off = _get_str(payload, off)
        indices, off = _get_array(payload, off)
        out.extend((name, index) for index in indices.tolist())
    return out, off


def _pack_inductions(buf: bytearray, inductions: dict) -> None:
    buf += _U32.pack(len(inductions))
    for name in sorted(inductions):
        _put_str(buf, name)
        try:
            buf += _I64.pack(int(inductions[name]))
        except (struct.error, TypeError, ValueError) as exc:
            raise _Unframeable(str(exc)) from None


def _unpack_inductions(payload: bytes, off: int) -> tuple[dict, int]:
    (n,) = _U32.unpack_from(payload, off)
    off += _U32.size
    out = {}
    for _ in range(n):
        name, off = _get_str(payload, off)
        (value,) = _I64.unpack_from(payload, off)
        off += _I64.size
        out[name] = value
    return out, off


def _pack_marklists(buf: bytearray, marklists: dict) -> None:
    buf += _U32.pack(len(marklists))
    for key in sorted(marklists):
        ml = marklists[key]
        if not isinstance(ml, MarkList):
            raise _Unframeable(f"marklist entry {key!r} is {type(ml).__name__}")
        _put_str(buf, key)
        _put_str(buf, ml.array)
        buf += _I64.pack(ml.proc)
        buf += _U8.pack(1 if ml.log_values else 0)
        levels = ml.levels
        buf += _U32.pack(len(levels))
        for marks in levels:
            buf += _I64.pack(marks.iteration)
            _put_index_array(buf, sorted(marks.writes))
            _put_index_array(buf, sorted(marks.exposed_reads))
            _put_index_array(buf, sorted(marks.updates))
            if marks.values:
                order = sorted(marks.values)
                buf += _U8.pack(1)
                _put_index_array(buf, order)
                _put_array(buf, _frame_scalars([marks.values[i] for i in order]))
            else:
                buf += _U8.pack(0)


def _unpack_marklists(payload: bytes, off: int) -> tuple[dict, int]:
    (n,) = _U32.unpack_from(payload, off)
    off += _U32.size
    out = {}
    for _ in range(n):
        key, off = _get_str(payload, off)
        array, off = _get_str(payload, off)
        (proc,) = _I64.unpack_from(payload, off)
        off += _I64.size
        (log_values,) = _U8.unpack_from(payload, off)
        off += _U8.size
        ml = MarkList(array, proc, log_values=bool(log_values))
        (n_levels,) = _U32.unpack_from(payload, off)
        off += _U32.size
        for _ in range(n_levels):
            (iteration,) = _I64.unpack_from(payload, off)
            off += _I64.size
            marks = ml.open_level(iteration)
            writes, off = _get_array(payload, off)
            exposed, off = _get_array(payload, off)
            updates, off = _get_array(payload, off)
            marks.writes.update(writes.tolist())
            marks.exposed_reads.update(exposed.tolist())
            marks.updates.update(updates.tolist())
            (has_values,) = _U8.unpack_from(payload, off)
            off += _U8.size
            if has_values:
                indices, off = _get_array(payload, off)
                values, off = _get_array(payload, off)
                marks.values.update(zip(indices.tolist(), values))
        out[key] = ml
    return out, off


# -- top level ------------------------------------------------------------------

#: residue/extras key -> (section kind, packer).  ``metrics`` (the slot-
#: overflow fallback, itself cold) deliberately rides the pickle section.
_PACKERS = {
    "views": (_K_NAMED_ARRAYS, _pack_named_arrays),
    "untested": (_K_NAMED_ARRAYS, _pack_named_arrays),
    "shadows": (_K_SHADOWS, _pack_shadows),
    "partials": (_K_PARTIALS, _pack_partials),
    "untested_reads": (_K_PAIR_LIST, _pack_pair_list),
    "untested_writes": (_K_PAIR_LIST, _pack_pair_list),
    "inductions": (_K_INDUCTIONS, _pack_inductions),
    "marklists": (_K_MARKLISTS, _pack_marklists),
}

_UNPACKERS = {
    _K_NAMED_ARRAYS: _unpack_named_arrays,
    _K_SHADOWS: _unpack_shadows,
    _K_PARTIALS: _unpack_partials,
    _K_PAIR_LIST: _unpack_pair_list,
    _K_INDUCTIONS: _unpack_inductions,
    _K_MARKLISTS: _unpack_marklists,
}


def pack_residue(residue: dict) -> bytes:
    """Encode a residue/extras dict; returns ``b""`` for an empty dict."""
    if not residue:
        return b""
    sections = bytearray()
    n_sections = 0
    leftover: dict = {}
    for key, value in residue.items():
        kind_packer = _PACKERS.get(key)
        if key == "fault" and isinstance(value, str):
            section = bytearray()
            _put_str(section, value)
            sections += _U8.pack(_K_FAULT)
            _put_str(sections, key)
            sections += section
            n_sections += 1
            continue
        if kind_packer is None:
            leftover[key] = value
            continue
        kind, packer = kind_packer
        section = bytearray()
        try:
            packer(section, value)
        except _Unframeable:
            leftover[key] = value
            continue
        sections += _U8.pack(kind)
        _put_str(sections, key)
        sections += section
        n_sections += 1
    if leftover:
        blob = pickle.dumps(leftover, protocol=pickle.HIGHEST_PROTOCOL)
        sections += _U8.pack(_K_PICKLE)
        _put_str(sections, "")
        sections += _U32.pack(len(blob))
        sections += blob
        n_sections += 1
    return bytes(_U32.pack(n_sections) + sections)


def unpack_residue(payload: bytes, offset: int, length: int) -> dict:
    """Decode a frame produced by :func:`pack_residue`."""
    if not length:
        return {}
    end = offset + length
    (n_sections,) = _U32.unpack_from(payload, offset)
    off = offset + _U32.size
    out: dict = {}
    for _ in range(n_sections):
        (kind,) = _U8.unpack_from(payload, off)
        off += _U8.size
        key, off = _get_str(payload, off)
        if kind == _K_PICKLE:
            (blob_len,) = _U32.unpack_from(payload, off)
            off += _U32.size
            out.update(pickle.loads(payload[off:off + blob_len]))
            off += blob_len
        elif kind == _K_FAULT:
            out[key], off = _get_str(payload, off)
        else:
            out[key], off = _UNPACKERS[kind](payload, off)
    if off != end:
        raise ValueError(
            f"residue frame decoded {off - offset} of {length} bytes"
        )
    return out


def pack_task_extras(extras: dict) -> bytes:
    """Encode dispatch-side task extras (inductions, marklists); shares the
    residue grammar so both pipe directions speak one format."""
    return pack_residue(extras)


def unpack_task_extras(payload: bytes, offset: int, length: int) -> dict:
    return unpack_residue(payload, offset, length)
