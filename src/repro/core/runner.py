"""Top-level entry points: one instantiation, or a program's worth of them."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.config import RuntimeConfig
from repro.core.engine import StageEngine, strategy_for_config
from repro.core.results import ProgramResult, RunResult
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.memory import MemoryImage
from repro.model.certify import certify_loop, fastpath_strategy
from repro.obs.metrics import MetricsRegistry, resolve_metrics_enabled
from repro.sched.feedback import FeedbackBalancer


def parallelize(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    weights: np.ndarray | None = None,
    memory: MemoryImage | None = None,
    strategy=None,
    sinks=(),
) -> RunResult:
    """Speculatively parallelize one loop instantiation.

    Unless an explicit ``strategy`` object is passed, resolves one through
    the engine registry (:func:`repro.core.engine.strategy_for_config`):

    * loops with speculative induction variables go through the two-phase
      induction strategy;
    * ``Strategy.SLIDING_WINDOW`` selects the SW strategy;
    * otherwise the blocked redistribution policy picks NRD / RD / adaptive.

    ``sinks`` are extra event subscribers (:mod:`repro.obs.sinks`) attached
    alongside the engine's own.  The returned result's final shared state
    always equals a sequential execution of the loop -- the runtime's
    fundamental guarantee.

    With ``config.certify`` at its default ``"hint"`` (or ``"trust"``),
    the certification front-end (:mod:`repro.model.certify`) examines the
    loop first: a certified-DOALL loop runs on the zero-speculation fast
    path, a certified-SEQUENTIAL loop runs in order on one processor, and
    anything else proceeds speculatively with the certificate attached to
    the result.  Certification never applies when the caller passes an
    explicit ``strategy`` or injects faults/OS chaos (the fast paths drop
    the checkpoint machinery recovery depends on); ``certify="off"``
    disables it entirely.
    """
    config = config or RuntimeConfig.adaptive()
    certificate = None
    if (
        strategy is None
        and config.certify != "off"
        and config.fault_plan is None
        and config.os_chaos is None
    ):
        certificate = certify_loop(loop, memory=memory)
        strategy = fastpath_strategy(certificate, config)
    strategy = strategy or strategy_for_config(loop, config)
    return StageEngine(
        loop, n_procs, strategy, config, costs=costs, weights=weights,
        memory=memory, sinks=sinks, certificate=certificate,
    ).run()


def run_program(
    instantiations: Iterable[SpeculativeLoop] | Sequence[SpeculativeLoop],
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    balancer: FeedbackBalancer | None = None,
) -> ProgramResult:
    """Run successive instantiations of a loop over a program's lifetime.

    This is the unit the paper's parallelism ratio is defined over:
    ``PR = #instantiations / (#restarts + #instantiations)``.  With
    ``config.feedback_balancing`` the measured per-iteration times of each
    instantiation re-block the next one (Section 5.1).

    Each instantiation carries its own initial memory image (the generators
    produce per-call input state); programs that thread shared state across
    calls can pass prepared loops whose ``materialize`` reflects it.
    """
    config = config or RuntimeConfig.adaptive()
    if balancer is None:
        # The balancer outlives single runs, so it carries its own
        # program-scoped registry when the config asks for metrics.
        balancer = FeedbackBalancer(
            metrics=MetricsRegistry(enabled=resolve_metrics_enabled(config))
        )
    program: ProgramResult | None = None
    for loop in instantiations:
        weights = None
        if config.feedback_balancing:
            weights = balancer.predict(loop.name, loop.n_iterations)
        result = parallelize(loop, n_procs, config, costs, weights=weights)
        if config.feedback_balancing:
            balancer.record(loop.name, result.iteration_times, loop.n_iterations)
        if program is None:
            program = ProgramResult(
                loop_name=result.loop_name,
                strategy=result.strategy,
                n_procs=n_procs,
            )
        program.add(result)
    if program is None:
        raise ValueError("run_program needs at least one instantiation")
    return program


def run_program_predictive(
    instantiations: Iterable[SpeculativeLoop],
    n_procs: int,
    predictor: "StrategyPredictor",
    costs: CostModel | None = None,
    balancer: FeedbackBalancer | None = None,
) -> ProgramResult:
    """Run a program with per-instantiation strategy selection.

    Each instantiation's configuration comes from the history-based
    :class:`~repro.sched.predictor.StrategyPredictor` (the paper's only
    stated mechanism for choosing between SW and (N)RD); the outcome is fed
    back so later instantiations exploit the best observed strategy.
    Feedback balancing applies whenever the chosen configuration enables it.
    """
    from repro.sched.predictor import StrategyPredictor  # noqa: F401 (doc link)

    balancer = balancer or FeedbackBalancer()
    program: ProgramResult | None = None
    for loop in instantiations:
        config = predictor.choose(loop.name)
        weights = None
        if config.feedback_balancing:
            weights = balancer.predict(loop.name, loop.n_iterations)
        result = parallelize(loop, n_procs, config, costs, weights=weights)
        predictor.record(loop.name, config, result)
        if config.feedback_balancing:
            balancer.record(loop.name, result.iteration_times, loop.n_iterations)
        if program is None:
            program = ProgramResult(
                loop_name=result.loop_name,
                strategy="predictive",
                n_procs=n_procs,
            )
        program.add(result)
    if program is None:
        raise ValueError("run_program_predictive needs at least one instantiation")
    return program
