"""Two-phase speculative parallelization of loops with conditional inductions.

TRACK's EXTEND 400 (and the similar FPTRAK 300) index their arrays with a
counter that is incremented under a loop-variant condition, so no processor
knows its starting counter value in advance.  The paper's recipe
(Section 5.2, "EXTEND 400"):

1. **Range-collection doall** -- every processor speculatively executes its
   block with the counter starting at the shared base value (zero-relative
   offset), entirely in private storage, while the runtime records each
   processor's total increment count and the array reference ranges.
2. A **parallel prefix sum** over the increment counts yields each
   processor's true starting offset.
3. **Re-execution doall** with corrected offsets; the standard processor-
   wise copy-in test then verifies that no read intersects a write from a
   lower processor ("maximum read index < minimum write index" in the
   paper's range formulation); last-value commit follows.

If the test fails at some processor, the R-LRPD recursion applies: the
valid prefix commits and both phases repeat on the remainder (with the
committed counter value as the new base).  A processor whose increment
count differs between the two phases read data whose location depended on
the counter; it is conservatively treated as a dependence sink.
"""

from __future__ import annotations

from repro.config import RuntimeConfig
from repro.core.analysis import analyze_stage
from repro.core.commit import commit_states, reinit_states
from repro.core.executor import execute_block, make_processor_state, ProcessorState
from repro.core.results import RunResult, StageResult
from repro.core.stage import (
    charge_analysis,
    charge_checkpoint_begin,
    charge_checkpoint_fault_recovery,
    committed_work,
    perform_restore,
)
from repro.errors import (
    ConfigurationError,
    FaultError,
    NoProgressError,
    SpeculationError,
)
from repro.faults.injector import FaultInjector
from repro.faults.selfcheck import UntestedAccessLog, check_final_state
from repro.loopir.loop import SpeculativeLoop
from repro.machine.checkpoint import CheckpointManager
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage, make_private_view
from repro.shadow import make_shadow
from repro.util.blocks import partition_even


def _phase_a_state(machine: Machine, loop: SpeculativeLoop, proc: int) -> ProcessorState:
    """Processor state where *every* array is privatized (side-effect-free
    range collection: even untested writes must not reach shared memory,
    their indices are provisional)."""
    views = {}
    shadows = {}
    for spec in loop.arrays:
        shared = machine.memory[spec.name]
        views[spec.name] = make_private_view(shared, sparse=spec.sparse)
        shadows[spec.name] = make_shadow(len(shared), sparse=spec.sparse)
    return ProcessorState(proc=proc, views=views, shadows=shadows)


def run_induction(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """Parallelize a loop with speculative induction variables."""
    config = config or RuntimeConfig.rd()
    if not loop.inductions:
        raise ConfigurationError(
            f"loop {loop.name!r} has no induction variables; use run_blocked"
        )

    machine = Machine(n_procs, costs=costs, memory=memory or loop.materialize())
    untested = loop.untested_names
    ckpt = (
        CheckpointManager(machine.memory, untested, config.on_demand_checkpoint)
        if untested
        else None
    )

    injector = FaultInjector(config.fault_plan) if config.fault_plan else None
    untested_log = (
        UntestedAccessLog() if (config.self_check and untested) else None
    )
    initial_state = machine.memory.snapshot() if config.self_check else None

    n = loop.n_iterations
    alive = list(range(n_procs))
    ivar_base = loop.initial_inductions()
    committed_upto = 0
    stage_results: list[StageResult] = []
    sequential_work = 0.0
    final_iter_times: dict[int, float] = {}
    stage_idx = 0
    retries = 0
    degraded_stages = 0
    zero_commit_streak = 0

    while committed_upto < n:
        if stage_idx >= config.max_stages:
            raise SpeculationError(
                f"{loop.name}: exceeded max_stages={config.max_stages}"
            )
        degraded = len(alive) < n_procs
        if degraded:
            degraded_stages += 1
        blocks = partition_even(committed_upto, n, alive)
        nonempty = [b for b in blocks if len(b)]

        # ---- Phase A: range collection ------------------------------------------
        record_a = machine.begin_stage()
        increments: dict[int, dict[str, int]] = {}
        for block in nonempty:
            state = _phase_a_state(machine, loop, block.proc)
            ctx = execute_block(machine, loop, state, block, None, inductions=dict(ivar_base))
            finals = ctx.induction_values()
            increments[block.proc] = {
                name: finals[name] - ivar_base[name] for name in ivar_base
            }
        machine.barrier()
        stage_results.append(
            StageResult(
                index=stage_idx,
                blocks=list(nonempty),
                # Range collection is a *planned* extra doall, not a failed
                # speculation: it does not count as a restart for PR (the
                # doubled execution time already shows up in the speedup).
                failed=False,
                earliest_sink_pos=None,
                committed_iterations=0,
                remaining_after=n - committed_upto,
                committed_work=0.0,
                n_arcs=0,
                committed_elements=0,
                restored_elements=0,
                redistributed_iterations=0,
                span=record_a.span(),
                breakdown=record_a.breakdown(),
                degraded=degraded,
            )
        )
        stage_idx += 1

        # ---- Prefix sums give per-processor starting offsets ----------------------
        offsets: dict[int, dict[str, int]] = {}
        running = {name: 0 for name in ivar_base}
        for block in nonempty:
            offsets[block.proc] = dict(running)
            for name in ivar_base:
                running[name] += increments[block.proc][name]

        # ---- Phase B: re-execution with corrected offsets --------------------------
        # Faults strike phase B only: range collection is a side-effect-free
        # private doall, so the interesting failure surface -- speculative
        # state that must be rolled back -- exists only in the re-execution.
        record_b = machine.begin_stage()
        charge_checkpoint_begin(machine, ckpt, injector, stage_idx)
        if untested_log is not None:
            untested_log.reset()
        states = {p: make_processor_state(machine, loop, p) for p in alive}
        phase_b_finals: dict[int, dict[str, int]] = {}
        faulted: dict[int, str] = {}  # block position -> fault class
        for pos, block in enumerate(nonempty):
            start = {
                name: ivar_base[name] + offsets[block.proc][name]
                for name in ivar_base
            }
            ctx = execute_block(
                machine, loop, states[block.proc], block, ckpt,
                inductions=start, injector=injector, stage=stage_idx,
                untested_log=untested_log,
            )
            phase_b_finals[block.proc] = ctx.induction_values()
            if ctx.fault is not None:
                faulted[pos] = ctx.fault
                if ctx.fault_permanent and len(alive) > 1:
                    alive.remove(block.proc)
                    injector.mark_dead(block.proc)
            elif (
                injector is not None
                and injector.corrupt(stage_idx, block.proc, states[block.proc])
                is not None
            ):
                faulted[pos] = "corrupt-write"
        machine.barrier()
        charge_checkpoint_fault_recovery(machine, ckpt, injector, stage_idx)

        groups = [(b.proc, states[b.proc].shadows) for b in nonempty]
        analysis = analyze_stage(groups)
        charge_analysis(machine, analysis, [b.proc for b in nonempty])
        if untested_log is not None:
            untested_log.verify(loop.name, stage_idx)
        f_pos = analysis.earliest_sink_pos

        # An increment mismatch means the counter's control flow read data
        # whose address depended on the counter -- treat as a sink.  A
        # faulted block's counter is untrusted garbage, not a mismatch; the
        # fault merge below already forces its re-execution.
        for pos, block in enumerate(nonempty):
            if pos in faulted:
                continue
            expected = {
                name: ivar_base[name]
                + offsets[block.proc][name]
                + increments[block.proc][name]
                for name in ivar_base
            }
            if phase_b_finals[block.proc] != expected:
                f_pos = pos if f_pos is None else min(f_pos, pos)
                break

        fault_pos = min(faulted) if faulted else None
        if fault_pos is not None and (f_pos is None or fault_pos < f_pos):
            f_pos = fault_pos
            retries += 1
        faulted_procs = sorted(nonempty[pos].proc for pos in faulted)

        committing = nonempty if f_pos is None else nonempty[:f_pos]
        failing = [] if f_pos is None else nonempty[f_pos:]
        if not committing:
            if fault_pos != 0:
                raise NoProgressError(
                    f"{loop.name}: induction stage {stage_idx} committed nothing"
                )
            zero_commit_streak += 1
            if zero_commit_streak > config.max_fault_retries:
                raise FaultError(
                    f"gave up after {zero_commit_streak} consecutive "
                    "zero-progress stages wiped out by injected faults "
                    f"(max_fault_retries={config.max_fault_retries})",
                    loop=loop.name,
                    stage=stage_idx,
                    proc=nonempty[0].proc,
                )
            restored = perform_restore(machine, ckpt, [b.proc for b in failing])
            reinit_states(machine, [states[b.proc] for b in failing])
            stage_results.append(
                StageResult(
                    index=stage_idx,
                    blocks=list(nonempty),
                    failed=True,
                    earliest_sink_pos=f_pos,
                    committed_iterations=0,
                    remaining_after=n - committed_upto,
                    committed_work=0.0,
                    n_arcs=len(analysis.arcs),
                    committed_elements=0,
                    restored_elements=restored,
                    redistributed_iterations=0,
                    span=record_b.span(),
                    breakdown=record_b.breakdown(),
                    faulted_procs=faulted_procs,
                    degraded=degraded,
                )
            )
            stage_idx += 1
            continue
        zero_commit_streak = 0

        committed_elements = commit_states(
            machine, loop, [states[b.proc] for b in committing]
        )
        stage_work = committed_work(states, committing)
        sequential_work += stage_work
        for block in committing:
            times = states[block.proc].iter_times
            for i in block.iterations():
                final_iter_times[i] = times[i]
        restored = perform_restore(machine, ckpt, [b.proc for b in failing])
        reinit_states(machine, [states[b.proc] for b in failing])
        for block in committing:
            states[block.proc].reset()

        # Advance the committed counter values past the committing prefix.
        for block in committing:
            for name in ivar_base:
                ivar_base[name] += increments[block.proc][name]

        committed_upto = committing[-1].stop
        stage_results.append(
            StageResult(
                index=stage_idx,
                blocks=list(nonempty),
                failed=f_pos is not None,
                earliest_sink_pos=f_pos,
                committed_iterations=sum(len(b) for b in committing),
                remaining_after=n - committed_upto,
                committed_work=stage_work,
                n_arcs=len(analysis.arcs),
                committed_elements=committed_elements,
                restored_elements=restored,
                redistributed_iterations=0,
                span=record_b.span(),
                breakdown=record_b.breakdown(),
                faulted_procs=faulted_procs,
                degraded=degraded,
            )
        )
        stage_idx += 1

    if config.self_check:
        check_final_state(loop, machine.memory, initial_state)
    result = RunResult(
        loop_name=loop.name,
        strategy="R-LRPD+induction",
        n_procs=n_procs,
        n_iterations=n,
        stages=stage_results,
        timeline=machine.timeline,
        sequential_work=sequential_work,
        iteration_times=final_iter_times,
        induction_finals=dict(ivar_base),
        memory=machine.memory,
    )
    if injector is not None:
        result.retries = retries
        result.faults_survived = injector.total_injected
        result.fault_counts = injector.counts()
        result.degraded_stages = degraded_stages
        result.dead_procs = sorted(injector.dead)
    return result
