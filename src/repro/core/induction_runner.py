"""Two-phase speculative parallelization of loops with conditional inductions.

TRACK's EXTEND 400 (and the similar FPTRAK 300) index their arrays with a
counter that is incremented under a loop-variant condition, so no processor
knows its starting counter value in advance.  The paper's recipe
(Section 5.2, "EXTEND 400"):

1. **Range-collection doall** -- every processor speculatively executes its
   block with the counter starting at the shared base value (zero-relative
   offset), entirely in private storage, while the runtime records each
   processor's total increment count and the array reference ranges.
2. A **parallel prefix sum** over the increment counts yields each
   processor's true starting offset.
3. **Re-execution doall** with corrected offsets; the standard processor-
   wise copy-in test then verifies that no read intersects a write from a
   lower processor ("maximum read index < minimum write index" in the
   paper's range formulation); last-value commit follows.

If the test fails at some processor, the R-LRPD recursion applies: the
valid prefix commits and both phases repeat on the remainder (with the
committed counter value as the new base).  A processor whose increment
count differs between the two phases read data whose location depended on
the counter; it is conservatively treated as a dependence sink.

The recursion runs in :class:`~repro.core.engine.StageEngine`; this module
contributes the two-phase policy (range collection as a ``pre_stage``,
offset-corrected re-execution, increment-mismatch sinks), registered as
``induction``.
"""

from __future__ import annotations

from repro.config import RuntimeConfig
from repro.core.backend import BlockTask
from repro.core.engine import StageEngine, register_strategy
from repro.core.engine import Strategy as EngineStrategy
from repro.core.executor import make_processor_state
from repro.core.results import RunResult, StageResult
from repro.errors import ConfigurationError
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.memory import MemoryImage
from repro.obs.events import BlockExecuted, StageBegin
from repro.util.blocks import Block, partition_even


@register_strategy
class InductionTwoPhase(EngineStrategy):
    """Range-collection doall + prefix sum + offset-corrected re-execution."""

    name = "induction"
    exit_mode = "ignore"

    def __init__(self) -> None:
        self.ivar_base: dict[str, int] = {}
        self._increments: dict[int, dict[str, int]] = {}
        self._offsets: dict[int, dict[str, int]] = {}
        self._finals: dict[int, dict[str, int]] = {}

    @classmethod
    def default_config(cls, **overrides) -> RuntimeConfig:
        return RuntimeConfig.rd(**overrides)

    def validate(self, loop: SpeculativeLoop, config: RuntimeConfig) -> None:
        if not loop.inductions:
            raise ConfigurationError(
                f"loop {loop.name!r} has no induction variables; use run_blocked"
            )

    def setup(self, eng: StageEngine) -> None:
        # Phase B creates fresh states per stage (the surviving pool may
        # have shrunk); nothing persists across stages but the counter base.
        self.ivar_base = eng.loop.initial_inductions()

    def run_label(self, eng: StageEngine) -> str:
        return "R-LRPD+induction"

    def schedule(self, eng: StageEngine) -> list[Block]:
        blocks = partition_even(eng.committed_upto, eng.n, eng.alive)
        return [b for b in blocks if len(b)]

    def pre_stage(self, eng: StageEngine, blocks: list[Block]) -> None:
        """Phase A: side-effect-free range collection, its own stage.

        Faults strike phase B only: range collection is a private doall, so
        the interesting failure surface -- speculative state that must be
        rolled back -- exists only in the re-execution.
        """
        machine = eng.machine
        stage = eng.stage_idx
        eng.emit(StageBegin(
            stage=stage, blocks=list(blocks),
            remaining=eng.n - eng.committed_upto, degraded=eng.degraded,
        ))
        record_a = machine.begin_stage()
        # Range collection is itself a doall, so it goes through the
        # execution backend like any speculative stage.  ``all_private``
        # states keep even untested writes out of shared memory;
        # ``use_injector=False`` keeps faults out of phase A.
        outcomes = eng.execute_tasks([
            BlockTask(
                stage=stage, pos=pos, block=block,
                inductions=dict(self.ivar_base),
                all_private=True, use_injector=False,
            )
            for pos, block in enumerate(blocks)
        ])
        increments: dict[int, dict[str, int]] = {}
        for outcome in outcomes:
            block = outcome.block
            finals = outcome.induction_values()
            increments[block.proc] = {
                name: finals[name] - self.ivar_base[name] for name in self.ivar_base
            }
            eng.emit(BlockExecuted(
                stage=stage, pos=outcome.pos, proc=block.proc,
                start=block.start, stop=block.stop,
            ))
        machine.barrier()
        eng._end_stage(StageResult(
            index=stage,
            blocks=list(blocks),
            # Range collection is a *planned* extra doall, not a failed
            # speculation: it does not count as a restart for PR (the
            # doubled execution time already shows up in the speedup).
            failed=False,
            earliest_sink_pos=None,
            committed_iterations=0,
            remaining_after=eng.n - eng.committed_upto,
            committed_work=0.0,
            n_arcs=0,
            committed_elements=0,
            restored_elements=0,
            redistributed_iterations=0,
            span=record_a.span(),
            breakdown=record_a.breakdown(),
            degraded=eng.degraded,
            redispatched_procs=eng.supervision.take_stage_redispatched(),
        ))
        self._increments = increments

        # Prefix sums give per-processor starting offsets.
        offsets: dict[int, dict[str, int]] = {}
        running = {name: 0 for name in self.ivar_base}
        for block in blocks:
            offsets[block.proc] = dict(running)
            for name in self.ivar_base:
                running[name] += increments[block.proc][name]
        self._offsets = offsets

    def begin_stage_states(self, eng: StageEngine, blocks: list[Block]) -> None:
        eng.states = {
            p: make_processor_state(eng.machine, eng.loop, p) for p in eng.alive
        }
        self._finals = {}

    def before_block(self, eng: StageEngine, block: Block) -> None:
        pass  # phase B always starts cold: offsets correct the copy-in

    def wants_preload(self, eng: StageEngine) -> bool:
        return False

    def exec_kwargs(self, eng: StageEngine, pos: int, block: Block) -> dict:
        start = {
            name: self.ivar_base[name] + self._offsets[block.proc][name]
            for name in self.ivar_base
        }
        return {"inductions": start}

    def after_block(self, eng: StageEngine, pos: int, block: Block, ctx) -> None:
        self._finals[block.proc] = ctx.induction_values()

    def adjust_sink(
        self, eng: StageEngine, blocks: list[Block], f_pos: int | None
    ) -> int | None:
        # An increment mismatch means the counter's control flow read data
        # whose address depended on the counter -- treat as a sink.  A
        # faulted block's counter is untrusted garbage, not a mismatch; the
        # fault merge already forces its re-execution.
        for pos, block in enumerate(blocks):
            if pos in eng.faulted:
                continue
            expected = {
                name: self.ivar_base[name]
                + self._offsets[block.proc][name]
                + self._increments[block.proc][name]
                for name in self.ivar_base
            }
            if self._finals[block.proc] != expected:
                f_pos = pos if f_pos is None else min(f_pos, pos)
                break
        return f_pos

    def zero_commit_message(self, eng: StageEngine, f_pos: int | None) -> str:
        return f"{eng.loop.name}: induction stage {eng.stage_idx} committed nothing"

    def after_stage(self, eng, committing, failing, f_pos) -> None:
        # Advance the committed counter values past the committing prefix.
        for block in committing:
            for name in self.ivar_base:
                self.ivar_base[name] += self._increments[block.proc][name]

    def result_extras(self, eng: StageEngine) -> dict:
        return {"induction_finals": dict(self.ivar_base)}


def run_induction(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """Parallelize a loop with speculative induction variables."""
    config = config or RuntimeConfig.rd()
    return StageEngine(
        loop, n_procs, InductionTwoPhase(), config, costs=costs, memory=memory,
    ).run()
