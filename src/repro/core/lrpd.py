"""The classic (non-recursive) LRPD test -- the paper's own baseline.

Speculatively execute the whole loop as a doall; test afterwards; if the
test fails, restore state and re-execute the entire loop sequentially.
Fully parallel loops win big; a loop with even one cross-processor flow
dependence pays the full speculative attempt *plus* a sequential run -- the
slowdown the R-LRPD test was designed to eliminate.

Both test conditions are supported: the original privatization condition
and the weaker copy-in condition (Section 2's overhead-reduction step).
"""

from __future__ import annotations


from repro.config import RuntimeConfig
from repro.core.analysis import analyze_stage, doall_valid
from repro.core.commit import commit_states
from repro.core.engine import require_fault_support, require_serial_backend
from repro.core.executor import execute_block
from repro.core.results import RunResult, StageResult
from repro.core.stage import (
    charge_analysis,
    charge_checkpoint_begin,
    committed_work,
    make_speculative_machine,
)
from repro.errors import ConfigurationError
from repro.loopir.context import SequentialContext
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage
from repro.machine.timeline import Category
from repro.util.blocks import partition_even


def run_sequential_fallback(
    machine: Machine,
    loop: SpeculativeLoop,
) -> tuple[float, dict[int, float]]:
    """Execute the loop serially on processor 0, charging its full work.

    Returns ``(work time, per-iteration work times)``.
    """
    ctx = SequentialContext(
        machine.memory,
        reductions=loop.reductions,
        inductions=loop.initial_inductions(),
    )
    omega = machine.costs.omega
    iter_times: dict[int, float] = {}
    total = 0.0
    for i in range(loop.n_iterations):
        ctx.iteration = i
        before = ctx.extra_work
        loop.body(ctx, i)
        extra = ctx.extra_work - before
        t = (loop.work_of(i) + extra) * omega
        iter_times[i] = t
        total += t
        if ctx.exited:
            break
    machine.charge(0, Category.WORK, total)
    return total, iter_times


def run_doall_lrpd(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """One speculative doall attempt; sequential re-execution on failure."""
    config = config or RuntimeConfig.nrd()
    require_fault_support(config, "the doall LRPD baseline")
    require_serial_backend(config, "the doall LRPD baseline")
    if loop.inductions:
        raise ConfigurationError(
            f"loop {loop.name!r} declares induction variables; the doall "
            "baseline does not support speculative inductions"
        )
    machine, states, ckpt = make_speculative_machine(
        loop, n_procs, config, costs, memory
    )

    n = loop.n_iterations
    blocks = partition_even(0, n, list(range(n_procs)))
    nonempty = [b for b in blocks if len(b)]

    record = machine.begin_stage()
    charge_checkpoint_begin(machine, ckpt)
    saw_exit = False
    reduction_names = frozenset(loop.reductions)
    for block in nonempty:
        if config.pre_initialize:
            states[block.proc].preload(machine, skip=reduction_names)
        ctx = execute_block(machine, loop, states[block.proc], block, ckpt)
        if ctx.exit_iteration is not None:
            saw_exit = True
    machine.barrier()

    groups = [(b.proc, states[b.proc].shadows) for b in nonempty]
    analysis = analyze_stage(groups)
    charge_analysis(machine, analysis, [b.proc for b in nonempty])
    # The plain doall LRPD predates the premature-exit technique: a loop
    # that exits early fails speculation and re-runs sequentially.
    valid = (not saw_exit) and doall_valid(groups, config.condition)

    stages: list[StageResult] = []
    if valid:
        committed_elements = commit_states(
            machine, loop, [states[b.proc] for b in nonempty]
        )
        stage_work = committed_work(states, nonempty)
        iter_times = {}
        for block in nonempty:
            times = states[block.proc].iter_times
            for i in block.iterations():
                iter_times[i] = times[i]
        stages.append(
            StageResult(
                index=0,
                blocks=nonempty,
                failed=False,
                earliest_sink_pos=None,
                committed_iterations=n,
                remaining_after=0,
                committed_work=stage_work,
                n_arcs=len(analysis.arcs),
                committed_elements=committed_elements,
                restored_elements=0,
                redistributed_iterations=0,
                span=record.span(),
                breakdown=record.breakdown(),
            )
        )
        sequential_work = stage_work
    else:
        # Discard all private data, restore untested state, run serially.
        restored = 0
        if ckpt is not None:
            restored = ckpt.restore_failed([b.proc for b in nonempty])
            if restored:
                share = machine.costs.restore_per_elem * restored / len(nonempty)
                for b in nonempty:
                    machine.charge(b.proc, Category.RESTORE, share)
        stages.append(
            StageResult(
                index=0,
                blocks=nonempty,
                failed=True,
                earliest_sink_pos=analysis.earliest_sink_pos,
                committed_iterations=0,
                remaining_after=n,
                committed_work=0.0,
                n_arcs=len(analysis.arcs),
                committed_elements=0,
                restored_elements=restored,
                redistributed_iterations=0,
                span=record.span(),
                breakdown=record.breakdown(),
            )
        )
        serial_record = machine.begin_stage()
        sequential_work, iter_times = run_sequential_fallback(machine, loop)
        stages.append(
            StageResult(
                index=1,
                blocks=[],
                failed=False,
                earliest_sink_pos=None,
                committed_iterations=n,
                remaining_after=0,
                committed_work=sequential_work,
                n_arcs=0,
                committed_elements=0,
                restored_elements=0,
                redistributed_iterations=0,
                span=serial_record.span(),
                breakdown=serial_record.breakdown(),
            )
        )

    return RunResult(
        loop_name=loop.name,
        strategy=f"LRPD-doall({config.condition.value})",
        n_procs=n_procs,
        n_iterations=n,
        stages=stages,
        timeline=machine.timeline,
        sequential_work=sequential_work,
        iteration_times=iter_times,
        memory=machine.memory,
    )
