"""Shared per-stage mechanics used by the blocked and sliding-window drivers.

Virtual-time semantics: within one stage every processor accumulates its own
execution, analysis, commit-or-restore charges; the stage span is the
maximum over processors plus globally serialized charges (one barrier per
stage, plus the full-checkpoint copy which is parallelized as ``elements/p``).
Commit and restore naturally overlap because they are charged to the two
disjoint processor groups (paper, Section 4).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.analysis import StageAnalysis
from repro.core.executor import ProcessorState, make_processor_state
from repro.machine.checkpoint import CheckpointManager
from repro.machine.machine import Machine
from repro.machine.timeline import Category


def make_speculative_machine(loop, n_procs, config, costs=None, memory=None):
    """Machine, per-processor states and checkpoint manager for one run.

    The common setup of the engine-bypassing runners (the doall LRPD
    baseline, DDG extraction); :class:`~repro.core.engine.StageEngine`
    builds its own topology-aware variant with strategy-provided states.
    """
    machine = Machine(n_procs, costs=costs, memory=memory or loop.materialize())
    states = {p: make_processor_state(machine, loop, p) for p in range(n_procs)}
    untested = loop.untested_names
    ckpt = (
        CheckpointManager(machine.memory, untested, config.on_demand_checkpoint)
        if untested
        else None
    )
    return machine, states, ckpt


def charge_checkpoint_begin(
    machine: Machine,
    ckpt: CheckpointManager | None,
    injector=None,
    stage: int = 0,
) -> int:
    """Start a checkpoint epoch; charge the full-copy cost if not on-demand.

    A planned checkpoint-storage fault loses the stage-begin full copy; it
    is detected immediately and rewritten, so the copy cost is charged
    twice.  On-demand checkpointing saves nothing at stage begin -- its
    storage fault strikes the first-touch log instead and is recovered
    after the barrier (:func:`charge_checkpoint_fault_recovery`).
    """
    if ckpt is None:
        return 0
    elements = ckpt.begin_stage()
    copies = 1
    if (
        elements
        and injector is not None
        and not ckpt.on_demand
        and injector.checkpoint_fault(stage) is not None
    ):
        copies = 2
    if elements:
        machine.charge_global(
            Category.CHECKPOINT,
            machine.costs.checkpoint_per_elem * elements * copies / machine.n_procs,
        )
        if machine.metrics.enabled:
            machine.metrics.counter("checkpoint.saved.elements").inc(
                elements * copies
            )
    return elements


def charge_checkpoint_fault_recovery(
    machine: Machine,
    ckpt: CheckpointManager | None,
    injector,
    stage: int,
) -> bool:
    """Recover an on-demand checkpoint log lost to a storage fault.

    Called after the execution barrier: the first-touch log collected this
    stage is re-saved (the in-memory old values survive, only the stable
    copy was lost), charged as a parallel re-write of the saved elements.
    Returns whether a fault fired.
    """
    if ckpt is None or injector is None or not ckpt.on_demand:
        return False
    if injector.checkpoint_fault(stage) is None:
        return False
    if ckpt.elements_checkpointed:
        machine.charge_global(
            Category.CHECKPOINT,
            machine.costs.checkpoint_per_elem
            * ckpt.elements_checkpointed
            / machine.n_procs,
        )
    return True


def charge_analysis(
    machine: Machine,
    analysis: StageAnalysis,
    group_procs: Sequence[int],
) -> None:
    """Charge each participating processor its analysis-phase share.

    Cost per processor is proportional to its distinct marked references and
    to ``log2`` of the number of participating processors (Section 4).
    """
    n_groups = len(group_procs)
    total_refs = 0
    for pos, proc in enumerate(group_procs):
        refs = analysis.distinct_refs[pos] if pos < len(analysis.distinct_refs) else 0
        total_refs += refs
        cost = machine.costs.analysis_cost(refs, n_groups)
        if cost:
            machine.charge(proc, Category.ANALYSIS, cost)
    if machine.metrics.enabled and total_refs:
        machine.metrics.counter("analysis.distinct_refs").inc(total_refs)


def perform_restore(
    machine: Machine,
    ckpt: CheckpointManager | None,
    failed_procs: Sequence[int],
) -> int:
    """Restore untested state modified by failed processors; charge them."""
    if ckpt is None or not failed_procs:
        return 0
    restored = ckpt.restore_failed(failed_procs)
    if restored:
        share = machine.costs.restore_per_elem * restored / len(failed_procs)
        for proc in failed_procs:
            machine.charge(proc, Category.RESTORE, share)
        if machine.metrics.enabled:
            machine.metrics.counter("restore.elements").inc(restored)
            machine.metrics.counter("restore.bytes").inc(ckpt.last_restored_bytes)
    return restored


def charge_redistribution(machine: Machine, state_blocks, ell: float) -> int:
    """Charge each receiving processor ``ell`` per migrated iteration.

    ``state_blocks`` is an iterable of ``(proc, n_iterations)``.  Returns the
    total migrated iteration count.
    """
    total = 0
    for proc, n_iters in state_blocks:
        if n_iters:
            machine.charge(proc, Category.REDISTRIBUTION, ell * n_iters)
            total += n_iters
    return total


def charge_redistribution_topo(
    machine: Machine,
    blocks,
    owner,
) -> tuple[int, float]:
    """Distance-aware redistribution charges under a machine topology.

    ``owner[i]`` is the processor that last executed iteration ``i``.
    Moving an iteration to processor ``q`` costs
    ``ell * (1 + remote_factor * distance(owner[i], q))``; staying on its
    owner costs nothing.  Returns ``(migrated count, total distance)``.
    """
    topo = machine.topology
    ell = machine.costs.ell
    migrated = 0
    total_distance = 0.0
    for block in blocks:
        if not len(block):
            continue
        cost = 0.0
        for i in block.iterations():
            prev = int(owner[i])
            if prev < 0 or prev == block.proc:
                continue
            migrated += 1
            if topo is None:
                cost += ell
            else:
                cost += ell * topo.migration_multiplier(prev, block.proc)
                total_distance += topo.distance(prev, block.proc)
        if cost:
            machine.charge(block.proc, Category.REDISTRIBUTION, cost)
    return migrated, total_distance


def committed_work(states: dict[int, ProcessorState], blocks) -> float:
    """Work-only virtual time of the iterations in the committing blocks."""
    total = 0.0
    for block in blocks:
        work = states[block.proc].iter_work
        total += sum(work[i] for i in block.iterations())
    return total
