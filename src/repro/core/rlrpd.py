"""The Recursive LRPD test, blocked flavors (NRD / RD / adaptive).

The loop is enclosed in a while loop that repeats speculative
parallelization until all iterations commit (paper, Fig. 1(b)):

1. block-schedule the remaining iterations (policy-dependent);
2. checkpoint untested state; execute all blocks as a doall with
   privatization, on-demand copy-in and shadow marking;
3. analyze: find the earliest sink of any cross-processor flow arc;
4. commit every block before the earliest sink (last value), restore the
   untested state touched by the rest, re-initialize their shadows;
5. recurse on the remaining iterations.

Progress is guaranteed -- the lowest-ranked block of every stage cannot be a
dependence sink -- so the loop finishes in at most ``p`` stages under NRD
and at most ``n`` stages under RD.
"""

from __future__ import annotations

import numpy as np

from repro.config import RedistributionPolicy, RuntimeConfig, Strategy, TestCondition
from repro.core.analysis import analyze_stage
from repro.core.commit import commit_states, reinit_states
from repro.core.executor import execute_block, make_processor_state
from repro.core.results import RunResult, StageResult
from repro.core.stage import (
    charge_analysis,
    charge_checkpoint_begin,
    charge_checkpoint_fault_recovery,
    charge_redistribution,
    charge_redistribution_topo,
    committed_work,
    perform_restore,
)
from repro.errors import (
    ConfigurationError,
    FaultError,
    NoProgressError,
    SpeculationError,
)
from repro.faults.injector import FaultInjector
from repro.faults.selfcheck import UntestedAccessLog, check_final_state
from repro.loopir.loop import SpeculativeLoop
from repro.machine.checkpoint import CheckpointManager
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage
from repro.machine.timeline import Category
from repro.machine.topology import Topology
from repro.util.blocks import Block, partition_even, partition_weighted


def _partition(
    start: int,
    stop: int,
    procs: list[int],
    weights: np.ndarray | None,
) -> list[Block]:
    if weights is None:
        return partition_even(start, stop, procs)
    return partition_weighted(start, stop, procs, weights[start:stop])


def run_blocked(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    weights: np.ndarray | None = None,
    memory: MemoryImage | None = None,
    topology: "Topology | None" = None,
) -> RunResult:
    """Run one instantiation of ``loop`` under a blocked R-LRPD strategy.

    Parameters
    ----------
    weights:
        Optional per-iteration predicted times (length ``n_iterations``)
        from the feedback-guided load balancer; ``None`` means an even
        block partition.
    memory:
        Run against an existing shared-memory image instead of a fresh
        :meth:`~repro.loopir.loop.SpeculativeLoop.materialize` (program-level
        drivers thread state across loop invocations this way).
    topology:
        Optional machine topology: redistribution then costs
        ``ell * (1 + remote_factor * distance(previous owner, new proc))``
        per migrated iteration instead of a flat ``ell``, and each stage
        records its total migration distance.

    Returns the full :class:`~repro.core.results.RunResult`; the machine's
    final shared state is observable via ``result.memory``.
    """
    config = config or RuntimeConfig.adaptive()
    if config.strategy is not Strategy.BLOCKED:
        raise ConfigurationError(f"run_blocked got strategy {config.strategy}")
    if config.condition is not TestCondition.COPY_IN:
        raise ConfigurationError(
            "the recursive test is defined over the copy-in condition; "
            "the privatization condition applies to the doall LRPD baseline"
        )
    if loop.inductions:
        raise ConfigurationError(
            f"loop {loop.name!r} declares induction variables; use "
            "repro.core.runner.parallelize (two-phase induction runner)"
        )

    machine = Machine(
        n_procs, costs=costs, memory=memory or loop.materialize(),
        topology=topology,
    )
    states = {p: make_processor_state(machine, loop, p) for p in range(n_procs)}
    owner = np.full(loop.n_iterations, -1, dtype=np.int64)
    untested = loop.untested_names
    ckpt = (
        CheckpointManager(machine.memory, untested, config.on_demand_checkpoint)
        if untested else None
    )

    injector = FaultInjector(config.fault_plan) if config.fault_plan else None
    untested_log = (
        UntestedAccessLog() if (config.self_check and untested) else None
    )
    initial_state = machine.memory.snapshot() if config.self_check else None

    n = loop.n_iterations
    alive = list(range(n_procs))
    committed_upto = 0
    stage_results: list[StageResult] = []
    sequential_work = 0.0
    final_iter_times: dict[int, float] = {}
    pending_blocks: list[Block] = []  # failed blocks awaiting NRD re-execution
    stage_idx = 0
    retries = 0
    degraded_stages = 0
    zero_commit_streak = 0

    def _finalize(result: RunResult) -> RunResult:
        if config.self_check:
            check_final_state(loop, machine.memory, initial_state)
        if injector is not None:
            result.retries = retries
            result.faults_survived = injector.total_injected
            result.fault_counts = injector.counts()
            result.degraded_stages = degraded_stages
            result.dead_procs = sorted(injector.dead)
        return result

    while committed_upto < n:
        if stage_idx >= config.max_stages:
            raise SpeculationError(
                f"{loop.name}: exceeded max_stages={config.max_stages}"
            )
        remaining = n - committed_upto
        degraded = len(alive) < n_procs
        if degraded:
            degraded_stages += 1

        # -- schedule this stage ------------------------------------------------
        if stage_idx == 0:
            blocks = _partition(0, n, alive, weights)
            redistributing = False
        else:
            policy = config.redistribution
            if policy is RedistributionPolicy.ALWAYS:
                redistributing = True
            elif policy is RedistributionPolicy.ADAPTIVE:
                redistributing = machine.costs.should_redistribute(
                    remaining, len(alive)
                )
            else:
                redistributing = False
            if redistributing:
                blocks = _partition(committed_upto, n, alive, weights)
            else:
                blocks = pending_blocks

        nonempty = [b for b in blocks if len(b)]
        orphan_rebalanced = False
        if (
            not redistributing
            and degraded
            and any(b.proc not in alive for b in nonempty)
        ):
            # NRD keeps failed blocks on their owners -- unless an owner is
            # dead.  The pending range is re-blocked once over the
            # survivors (a block cannot simply be handed to a survivor that
            # already holds one: a processor's shadow marks must form a
            # single analysis group).  Only the iterations that actually
            # moved are charged, below.
            nonempty = [
                b
                for b in _partition(committed_upto, n, alive, weights)
                if len(b)
            ]
            orphan_rebalanced = True
        if not nonempty:
            raise SpeculationError(f"{loop.name}: empty schedule with work left")

        # -- execute -------------------------------------------------------------
        record = machine.begin_stage()
        charge_checkpoint_begin(machine, ckpt, injector, stage_idx)
        if weights is not None and stage_idx == 0:
            # Timer instrumentation + parallel prefix of the balancer.
            machine.charge_global(
                Category.SCHEDULE,
                machine.costs.schedule_per_iter * n / n_procs,
            )
        redistributed = 0
        migration_distance = 0.0
        if stage_idx > 0 and redistributing:
            if topology is None:
                # Flat (ccUMA) machine: the Section 4 model's uniform
                # ell-per-iteration charge.
                redistributed = charge_redistribution(
                    machine,
                    ((b.proc, len(b)) for b in nonempty),
                    machine.costs.ell,
                )
            else:
                redistributed, migration_distance = charge_redistribution_topo(
                    machine, nonempty, owner
                )
        elif orphan_rebalanced:
            redistributed, migration_distance = charge_redistribution_topo(
                machine, nonempty, owner
            )
        if untested_log is not None:
            untested_log.reset()
        exits: dict[int, int] = {}  # block position -> exit iteration
        faulted: dict[int, str] = {}  # block position -> fault class
        reduction_names = frozenset(loop.reductions)
        for pos, block in enumerate(nonempty):
            if config.pre_initialize:
                states[block.proc].preload(machine, skip=reduction_names)
            ctx = execute_block(
                machine, loop, states[block.proc], block, ckpt,
                injector=injector, stage=stage_idx, untested_log=untested_log,
            )
            if len(block):
                owner[block.start : block.stop] = block.proc
            if ctx.fault is not None:
                # A faulted block's work (and any exit it signalled) is
                # untrusted; its processor joins the failed set below.
                faulted[pos] = ctx.fault
                if ctx.fault_permanent and len(alive) > 1:
                    alive.remove(block.proc)
                    injector.mark_dead(block.proc)
            elif (
                injector is not None
                and injector.corrupt(stage_idx, block.proc, states[block.proc])
                is not None
            ):
                # Corrupted speculative write, caught by the stage's
                # integrity check: discard the block's private state and
                # re-execute, same as a failed-speculation processor.
                faulted[pos] = "corrupt-write"
            elif ctx.exit_iteration is not None:
                exits[pos] = ctx.exit_iteration
        machine.barrier()
        charge_checkpoint_fault_recovery(machine, ckpt, injector, stage_idx)

        # -- analyze -------------------------------------------------------------
        groups = [(b.proc, states[b.proc].shadows) for b in nonempty]
        analysis = analyze_stage(groups)
        charge_analysis(machine, analysis, [b.proc for b in nonempty])
        if untested_log is not None:
            untested_log.verify(loop.name, stage_idx)

        # The effective failure point folds injected faults into the
        # recursion: everything from the first faulted block on re-executes,
        # exactly like blocks past the earliest dependence sink.
        f_pos = analysis.earliest_sink_pos
        fault_pos = min(faulted) if faulted else None
        if fault_pos is not None and (f_pos is None or fault_pos < f_pos):
            f_pos = fault_pos
            # The fault (not a data dependence) set the failure point, so
            # this stage's re-execution is charged to fault recovery.
            retries += 1
        faulted_procs = sorted(nonempty[pos].proc for pos in faulted)

        # -- premature exit (DCDCMP loop 70 style) ---------------------------------
        # An exit is trustworthy only if its processor's own work is: its
        # block must lie strictly before the earliest failure point
        # (dependence sink or faulted block).
        valid_exits = {
            pos: e
            for pos, e in exits.items()
            if f_pos is None or pos < f_pos
        }
        if valid_exits:
            pos_e = min(valid_exits)
            e = valid_exits[pos_e]
            exit_block = nonempty[pos_e]
            committing = nonempty[:pos_e]
            committed_elements = commit_states(
                machine, loop,
                [states[b.proc] for b in committing] + [states[exit_block.proc]],
            )
            stage_work = committed_work(states, committing)
            for block in committing:
                times = states[block.proc].iter_times
                for i in block.iterations():
                    final_iter_times[i] = times[i]
            prefix = range(exit_block.start, e + 1)
            times = states[exit_block.proc].iter_times
            works = states[exit_block.proc].iter_work
            for i in prefix:
                final_iter_times[i] = times[i]
                stage_work += works[i]
            sequential_work += stage_work
            discarded = nonempty[pos_e + 1 :]
            restored = perform_restore(machine, ckpt, [b.proc for b in discarded])
            reinit_states(machine, [states[b.proc] for b in discarded])
            stage_results.append(
                StageResult(
                    index=stage_idx,
                    blocks=list(nonempty),
                    failed=False,
                    earliest_sink_pos=None,
                    committed_iterations=(e + 1) - committed_upto,
                    remaining_after=0,
                    committed_work=stage_work,
                    n_arcs=len(analysis.arcs),
                    committed_elements=committed_elements,
                    restored_elements=restored,
                    redistributed_iterations=redistributed,
                    span=record.span(),
                    migration_distance=migration_distance,
                    breakdown=record.breakdown(),
                    faulted_procs=faulted_procs,
                    degraded=degraded,
                )
            )
            return _finalize(RunResult(
                loop_name=loop.name,
                strategy=config.label(),
                n_procs=n_procs,
                n_iterations=n,
                stages=stage_results,
                timeline=machine.timeline,
                sequential_work=sequential_work,
                iteration_times=final_iter_times,
                memory=machine.memory,
                exit_iteration=e,
            ))
        committing = nonempty if f_pos is None else nonempty[:f_pos]
        failing = [] if f_pos is None else nonempty[f_pos:]
        if not committing:
            # The lowest-ranked block can never be an analysis sink, so a
            # zero-commit stage is provably fault-caused: roll everything
            # back and retry, up to the configured bound.
            if fault_pos != 0:
                raise NoProgressError(
                    f"{loop.name}: stage {stage_idx} committed nothing "
                    f"(earliest sink at position {f_pos})"
                )
            zero_commit_streak += 1
            if zero_commit_streak > config.max_fault_retries:
                raise FaultError(
                    f"gave up after {zero_commit_streak} consecutive "
                    "zero-progress stages wiped out by injected faults "
                    f"(max_fault_retries={config.max_fault_retries})",
                    loop=loop.name,
                    stage=stage_idx,
                    proc=nonempty[0].proc,
                )
            restored = perform_restore(machine, ckpt, [b.proc for b in failing])
            reinit_states(machine, [states[b.proc] for b in failing])
            stage_results.append(
                StageResult(
                    index=stage_idx,
                    blocks=list(nonempty),
                    failed=True,
                    earliest_sink_pos=f_pos,
                    committed_iterations=0,
                    remaining_after=remaining,
                    committed_work=0.0,
                    n_arcs=len(analysis.arcs),
                    committed_elements=0,
                    restored_elements=restored,
                    redistributed_iterations=redistributed,
                    span=record.span(),
                    migration_distance=migration_distance,
                    breakdown=record.breakdown(),
                    faulted_procs=faulted_procs,
                    degraded=degraded,
                )
            )
            pending_blocks = failing
            stage_idx += 1
            continue
        zero_commit_streak = 0

        # -- commit / restore / re-init -------------------------------------------
        committed_elements = commit_states(
            machine, loop, [states[b.proc] for b in committing]
        )
        stage_work = committed_work(states, committing)
        sequential_work += stage_work
        for block in committing:
            times = states[block.proc].iter_times
            for i in block.iterations():
                final_iter_times[i] = times[i]
        restored = perform_restore(machine, ckpt, [b.proc for b in failing])
        reinit_states(machine, [states[b.proc] for b in failing])
        for block in committing:
            states[block.proc].reset()  # committed data is in shared memory now

        new_committed_upto = committing[-1].stop
        if new_committed_upto <= committed_upto:
            raise NoProgressError(
                f"{loop.name}: stage {stage_idx} failed to advance the commit point"
            )
        committed_upto = new_committed_upto

        stage_results.append(
            StageResult(
                index=stage_idx,
                blocks=list(nonempty),
                failed=f_pos is not None,
                earliest_sink_pos=f_pos,
                committed_iterations=sum(len(b) for b in committing),
                remaining_after=n - committed_upto,
                committed_work=stage_work,
                n_arcs=len(analysis.arcs),
                committed_elements=committed_elements,
                restored_elements=restored,
                redistributed_iterations=redistributed,
                span=record.span(),
                migration_distance=migration_distance,
                breakdown=record.breakdown(),
                faulted_procs=faulted_procs,
                degraded=degraded,
            )
        )
        pending_blocks = failing
        stage_idx += 1

    return _finalize(RunResult(
        loop_name=loop.name,
        strategy=config.label(),
        n_procs=n_procs,
        n_iterations=n,
        stages=stage_results,
        timeline=machine.timeline,
        sequential_work=sequential_work,
        iteration_times=final_iter_times,
        memory=machine.memory,
    ))
