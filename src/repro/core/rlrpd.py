"""The Recursive LRPD test, blocked flavors (NRD / RD / adaptive).

The loop is enclosed in a while loop that repeats speculative
parallelization until all iterations commit (paper, Fig. 1(b)):

1. block-schedule the remaining iterations (policy-dependent);
2. checkpoint untested state; execute all blocks as a doall with
   privatization, on-demand copy-in and shadow marking;
3. analyze: find the earliest sink of any cross-processor flow arc;
4. commit every block before the earliest sink (last value), restore the
   untested state touched by the rest, re-initialize their shadows;
5. recurse on the remaining iterations.

Progress is guaranteed -- the lowest-ranked block of every stage cannot be a
dependence sink -- so the loop finishes in at most ``p`` stages under NRD
and at most ``n`` stages under RD.

The recursion itself lives in :class:`~repro.core.engine.StageEngine`; this
module contributes only the blocked *policy* -- how the remaining
iterations are scheduled and what redistribution costs -- as the
registered strategies ``nrd`` / ``rd`` / ``adaptive``.
"""

from __future__ import annotations

import numpy as np

from repro.config import RedistributionPolicy, RuntimeConfig, Strategy, TestCondition
from repro.core.engine import StageEngine, register_strategy
from repro.core.engine import Strategy as EngineStrategy
from repro.core.results import RunResult
from repro.core.stage import charge_redistribution, charge_redistribution_topo
from repro.errors import ConfigurationError, SpeculationError
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.memory import MemoryImage
from repro.machine.timeline import Category
from repro.machine.topology import Topology
from repro.util.blocks import Block, partition_even, partition_weighted


def _partition(
    start: int,
    stop: int,
    procs: list[int],
    weights: np.ndarray | None,
) -> list[Block]:
    if weights is None:
        return partition_even(start, stop, procs)
    return partition_weighted(start, stop, procs, weights[start:stop])


class _BlockedBase(EngineStrategy):
    """Shared blocked policy: one block per processor, redistribution per
    the configured :class:`~repro.config.RedistributionPolicy`."""

    exit_mode = "collect"

    def __init__(self) -> None:
        self.pending: list[Block] = []  # failed blocks awaiting re-execution
        self._redistributing = False
        self._orphan_rebalanced = False

    def validate(self, loop: SpeculativeLoop, config: RuntimeConfig) -> None:
        if config.strategy is not Strategy.BLOCKED:
            raise ConfigurationError(f"run_blocked got strategy {config.strategy}")
        if config.condition is not TestCondition.COPY_IN:
            raise ConfigurationError(
                "the recursive test is defined over the copy-in condition; "
                "the privatization condition applies to the doall LRPD baseline"
            )
        if loop.inductions:
            raise ConfigurationError(
                f"loop {loop.name!r} declares induction variables; use "
                "repro.core.runner.parallelize (two-phase induction runner)"
            )

    def setup(self, eng: StageEngine) -> None:
        super().setup(eng)
        self.owner = np.full(eng.n, -1, dtype=np.int64)

    def schedule(self, eng: StageEngine) -> list[Block]:
        if eng.stage_idx == 0:
            blocks = _partition(0, eng.n, eng.alive, eng.weights)
            self._redistributing = False
        else:
            policy = eng.config.redistribution
            if policy is RedistributionPolicy.ALWAYS:
                self._redistributing = True
            elif policy is RedistributionPolicy.ADAPTIVE:
                self._redistributing = eng.machine.costs.should_redistribute(
                    eng.remaining, len(eng.alive)
                )
            else:
                self._redistributing = False
            if self._redistributing:
                blocks = _partition(eng.committed_upto, eng.n, eng.alive, eng.weights)
            else:
                blocks = self.pending

        nonempty = [b for b in blocks if len(b)]
        self._orphan_rebalanced = False
        if (
            not self._redistributing
            and eng.degraded
            and any(b.proc not in eng.alive for b in nonempty)
        ):
            # NRD keeps failed blocks on their owners -- unless an owner is
            # dead.  The pending range is re-blocked once over the
            # survivors (a block cannot simply be handed to a survivor that
            # already holds one: a processor's shadow marks must form a
            # single analysis group).  Only the iterations that actually
            # moved are charged, below.
            nonempty = [
                b
                for b in _partition(eng.committed_upto, eng.n, eng.alive, eng.weights)
                if len(b)
            ]
            self._orphan_rebalanced = True
        if not nonempty:
            raise SpeculationError(f"{eng.loop.name}: empty schedule with work left")
        return nonempty

    def charge_schedule(
        self, eng: StageEngine, blocks: list[Block]
    ) -> tuple[int, float]:
        machine = eng.machine
        if eng.weights is not None and eng.stage_idx == 0:
            # Timer instrumentation + parallel prefix of the balancer.
            machine.charge_global(
                Category.SCHEDULE,
                machine.costs.schedule_per_iter * eng.n / eng.n_procs,
            )
        redistributed = 0
        migration_distance = 0.0
        if eng.stage_idx > 0 and self._redistributing:
            if eng.topology is None:
                # Flat (ccUMA) machine: the Section 4 model's uniform
                # ell-per-iteration charge.
                redistributed = charge_redistribution(
                    machine,
                    ((b.proc, len(b)) for b in blocks),
                    machine.costs.ell,
                )
            else:
                redistributed, migration_distance = charge_redistribution_topo(
                    machine, blocks, self.owner
                )
        elif self._orphan_rebalanced:
            redistributed, migration_distance = charge_redistribution_topo(
                machine, blocks, self.owner
            )
        return redistributed, migration_distance

    def after_block(self, eng: StageEngine, pos: int, block: Block, ctx) -> None:
        if len(block):
            self.owner[block.start : block.stop] = block.proc

    def after_stage(self, eng, committing, failing, f_pos) -> None:
        self.pending = failing

    def after_zero_commit(self, eng: StageEngine, failing: list[Block]) -> None:
        self.pending = failing


@register_strategy
class BlockedNRD(_BlockedBase):
    """No redistribution: failed processors re-execute their own blocks."""

    name = "nrd"

    @classmethod
    def default_config(cls, **overrides) -> RuntimeConfig:
        return RuntimeConfig.nrd(**overrides)


@register_strategy
class BlockedRD(_BlockedBase):
    """Always redistribute: re-block the remainder over all processors."""

    name = "rd"

    @classmethod
    def default_config(cls, **overrides) -> RuntimeConfig:
        return RuntimeConfig.rd(**overrides)


@register_strategy
class AdaptiveBlocked(_BlockedBase):
    """Redistribute while Eq. (4)'s payoff condition holds, then NRD."""

    name = "adaptive"

    @classmethod
    def default_config(cls, **overrides) -> RuntimeConfig:
        return RuntimeConfig.adaptive(**overrides)


_POLICY_TO_STRATEGY = {
    RedistributionPolicy.NEVER: BlockedNRD,
    RedistributionPolicy.ALWAYS: BlockedRD,
    RedistributionPolicy.ADAPTIVE: AdaptiveBlocked,
}


def run_blocked(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    weights: np.ndarray | None = None,
    memory: MemoryImage | None = None,
    topology: "Topology | None" = None,
) -> RunResult:
    """Run one instantiation of ``loop`` under a blocked R-LRPD strategy.

    Parameters
    ----------
    weights:
        Optional per-iteration predicted times (length ``n_iterations``)
        from the feedback-guided load balancer; ``None`` means an even
        block partition.
    memory:
        Run against an existing shared-memory image instead of a fresh
        :meth:`~repro.loopir.loop.SpeculativeLoop.materialize` (program-level
        drivers thread state across loop invocations this way).
    topology:
        Optional machine topology: redistribution then costs
        ``ell * (1 + remote_factor * distance(previous owner, new proc))``
        per migrated iteration instead of a flat ``ell``, and each stage
        records its total migration distance.

    Returns the full :class:`~repro.core.results.RunResult`; the machine's
    final shared state is observable via ``result.memory``.
    """
    config = config or RuntimeConfig.adaptive()
    strategy = _POLICY_TO_STRATEGY[config.redistribution]()
    return StageEngine(
        loop, n_procs, strategy, config, costs=costs, weights=weights,
        memory=memory, topology=topology,
    ).run()
