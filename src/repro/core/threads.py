"""The ``threads`` execution backend: zero-copy in-process parallelism.

The fork and shm backends pay real dispatch costs -- pickled deltas, a
memory diff-sync broadcast, struct-framed control pipes -- because their
workers live in other processes.  The kernels layer (:mod:`repro.kernels`)
removed the last reason for that: every hot per-element loop is now a
batch primitive that releases the GIL inside numpy, so worker *threads*
in the engine's own process can execute blocks concurrently on stock
CPython and truly in parallel on free-threaded (PEP 703) builds.

Execution model
---------------

Worker threads run :func:`~repro.core.executor.execute_block` **directly
against the engine's own processor states and shared memory** -- the
in-process analogue of the shm backend's adopted dense planes, with no
adoption needed because there is only one address space:

* Every strategy schedules at most one block per processor per stage, so
  ``eng.states[block.proc]`` is exclusively this block's for the whole
  dispatch; views, shadows, partials, iteration times and the executed
  list land in their final location as the block runs, and the merge
  phase has nothing to copy.
* Virtual-time charges go to a thread-local
  :class:`~repro.core.backend._ChargeLog` and are replayed against the
  real timeline **in block order** during the merge -- the fork backend's
  proven-bit-identical folding.  Metrics accumulate in a per-task private
  registry merged the same way, so concurrent completion order never
  reaches a deterministic stream.
* Untested arrays follow the fork worker protocol with a thread-local
  :class:`~repro.machine.checkpoint.CheckpointManager`: the worker writes
  shared memory under its own checkpoint (safe: the statically-analyzable
  isolation contract forbids cross-processor element sharing), captures
  ``(indices, values)``, rolls its writes back, and the merge replays
  them through the parent's checkpoint manager in block order -- so stage
  rollback sees exactly the serial write/restore history.

Supervision
-----------

Threads cannot be SIGKILLed, so the hang protocol differs from
:class:`~repro.core.supervise.WorkerSupervisor`'s reap-and-respawn:

* the same adaptive deadline (``worker_timeout`` floor, observed
  per-block max x ``worker_timeout_factor``) marks a share *overdue*;
* the supervisor sets the worker's **cooperative cancellation flag**,
  which :func:`~repro.core.executor.execute_block` checks at every
  iteration boundary -- the granularity at which the GIL-releasing
  kernel calls return control -- and the block aborts with
  :class:`~repro.core.executor.BlockCancelled`;
* the worker rolls back its thread-local checkpoint, the supervisor
  resets the share's processor states and mark lists to their (clear)
  dispatch-time contents, and the share is re-dispatched bit-identically
  on the surviving thread.  ``max_worker_respawns`` bounds these
  recoveries and ``_MAX_BLOCK_DEATHS`` quarantines poison blocks, after
  which the pool degrades ``threads -> serial`` through the usual
  :class:`~repro.core.supervise.PoolDegradation` path;
* a thread that never acknowledges the flag is wedged inside a single
  iteration (native code that does not return); it cannot be stopped
  from in-process and a degraded rerun would race its writes, so that is
  a terminal :class:`~repro.errors.BackendError`, not a degradation.

``os_chaos`` plans deliver real SIGKILL/SIGSTOP to worker *processes*;
thread workers share the engine's process, so the backend refuses chaos
configs instead of silently killing the whole run.

GIL detection: :func:`thread_mode` reports ``"free-threaded"`` when the
interpreter runs with the GIL disabled (``sys._is_gil_enabled`` on
3.13+), else ``"gil"`` -- kernel calls still release the GIL, Python
bookkeeping between them serializes.  The mode is surfaced on
``RunResult.thread_mode`` / ``summary()`` / the stage-trace title, and
deliberately kept **out** of the event/span streams so disturbed and
undisturbed traces stay byte-identical across backends.
"""

from __future__ import annotations

import os
import queue
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.core.backend import (
    BACKENDS,
    BlockOutcome,
    BlockTask,
    ExecutionBackend,
    _AccessRecorder,
    _ChargeLog,
    check_unique_procs,
    hoist_injection,
    make_capture_checkpoint,
)
from repro.core.executor import (
    BlockCancelled,
    execute_block,
    make_all_private_state,
)
from repro.core.supervise import (
    _BACKOFF_BASE,
    _BACKOFF_CAP,
    _MAX_BLOCK_DEATHS,
    PoolDegradation,
    SupervisionStats,
    log_supervision,
)
from repro.errors import BackendError, ConfigurationError
from repro.kernels import get_kernels
from repro.machine.checkpoint import CheckpointManager
from repro.obs.metrics import MetricsRegistry
from repro.obs.oplog import get_oplog


def thread_mode() -> str:
    """``"free-threaded"`` when this interpreter runs with the GIL
    disabled (PEP 703 builds expose ``sys._is_gil_enabled``), else
    ``"gil"`` -- stock builds still overlap the GIL-releasing kernel
    calls, but Python bookkeeping between them serializes."""
    probe = getattr(sys, "_is_gil_enabled", None)
    if probe is not None and not probe():
        return "free-threaded"
    return "gil"


#: Seconds an overdue worker gets to acknowledge its cancellation flag
#: before it is declared wedged (floored; scaled by the per-block
#: estimate so slow-iteration workloads are not misread as wedged).
_CANCEL_GRACE = 5.0


@dataclass
class _ThreadDelta:
    """What a worker thread reports about one executed block.

    Deliberately small: views, shadows, partials, iteration times and the
    executed list were written in place (direct execution), so only the
    order-sensitive residue travels -- folded charges, the metrics
    snapshot, the untested capture and the fault/exit outcome.
    """

    pos: int
    charges: list[tuple]
    fault: str | None = None
    fault_permanent: bool = False
    exit_iteration: int | None = None
    inductions: dict[str, int] = field(default_factory=dict)
    untested: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    untested_reads: list[tuple[str, int]] = field(default_factory=list)
    untested_writes: list[tuple[str, int]] = field(default_factory=list)
    metrics: dict | None = None
    host_start: float = 0.0
    host_dur: float = 0.0
    virt_dur: float = 0.0


def _run_thread_task(eng, task: BlockTask, cancel: threading.Event) -> _ThreadDelta:
    """Execute one block on the calling worker thread.

    Runs in a worker thread against live engine state; every ``eng``
    access below carries its safety argument for the thread-safety lint
    (``tools/check_thread_safety.py``).
    """
    # thread-safe: machine.memory/costs are read-only maps here; charges
    # go to the thread-local log, never the shared timeline.
    log = _ChargeLog(eng.machine.memory, eng.machine.costs)
    if task.collect_metrics:
        log.metrics = MetricsRegistry()
    block = task.block
    recorder = None
    ckpt = None
    if task.all_private:
        # thread-safe: fully privatized state; reads shared memory, all
        # writes land in thread-private views.
        state = make_all_private_state(log, eng.loop, block.proc)
    elif task.plain:
        # thread-safe: the plain state (no views/shadows) is exclusively
        # ours, and the DOALL certificate guarantees no element we write
        # is touched by any concurrent block.
        state = eng.states[block.proc]
        # thread-safe: charge-free capture checkpoint over all arrays --
        # direct writes must roll back under cancellation and replay in
        # block order at merge, exactly like untested writes (eng.ckpt is
        # None on certified runs, so no CHECKPOINT charges arise).
        ckpt = make_capture_checkpoint(eng.machine.memory)
        if task.log_untested:
            recorder = _AccessRecorder()
    else:
        # thread-safe: one block per processor per stage -- this state is
        # exclusively ours for the whole dispatch.
        state = eng.states[block.proc]
        # thread-safe: thread-local checkpoint over shared memory; the
        # isolation contract keeps our untested elements ours alone.
        if eng.ckpt is not None:
            # thread-safe: reads the parent checkpoint's immutable name
            # list and config only; the manager itself is thread-local.
            ckpt = CheckpointManager(
                eng.machine.memory, eng.ckpt.names,
                eng.config.on_demand_checkpoint,
            )
            ckpt.begin_stage()
        if task.log_untested:
            recorder = _AccessRecorder()
        if task.preload:
            # thread-safe: bulk copy-in reads shared arrays, writes only
            # our private views; the charge goes to the thread-local log.
            state.preload(log, skip=eng.reduction_names)
    charges_before = len(log.charges)
    host_before = time.perf_counter() if task.collect_spans else 0.0
    try:
        # thread-safe: executes on our exclusive state; untested writes
        # go through the thread-local checkpoint; charges to the log.
        ctx = execute_block(
            log, eng.loop, state, block, ckpt,
            inductions=task.inductions, marklists=task.marklists,
            stage=task.stage, untested_log=recorder,
            slowdown=task.slowdown, death=task.death,
            cancel=cancel, **task.extras,
        )
    except BlockCancelled:
        # Roll our partial untested writes back before acknowledging; the
        # supervisor resets the processor state (it must not race us).
        if ckpt is not None:
            ckpt.restore_failed([block.proc])
        raise
    charges: dict = {}
    for category, amount in log.charges:
        charges[category] = charges.get(category, 0.0) + amount
    delta = _ThreadDelta(
        pos=task.pos,
        charges=list(charges.items()),
        fault=ctx.fault,
        fault_permanent=ctx.fault_permanent,
        exit_iteration=ctx.exit_iteration,
        inductions=ctx.induction_values(),
    )
    if task.collect_metrics:
        delta.metrics = log.metrics.snapshot()
    if task.collect_spans:
        delta.host_start = host_before
        delta.host_dur = time.perf_counter() - host_before
        delta.virt_dur = sum(
            amount for _, amount in log.charges[charges_before:]
        )
    if task.all_private:
        return delta
    if ckpt is not None:
        for name, indices in ckpt.modified_by([block.proc]).items():
            if indices:
                idx = np.asarray(indices, dtype=np.int64)
                # thread-safe: gathers only elements this block wrote.
                delta.untested[name] = (
                    idx, get_kernels().gather(eng.machine.memory[name].data, idx)
                )
        # Undo our untested writes: the merge replays them through the
        # parent's checkpoint manager in block order, which must observe
        # the pre-stage values as "old" for rollback to stay serial.
        ckpt.restore_failed([block.proc])
    if recorder is not None:
        delta.untested_reads = sorted(recorder.reads)
        delta.untested_writes = sorted(recorder.writes)
    return delta


class _Reply:
    """One dispatch's result slot, filled by the worker thread."""

    __slots__ = ("deltas", "error", "cancelled")

    def __init__(self) -> None:
        self.deltas: list[_ThreadDelta] | None = None
        self.error: str | None = None
        self.cancelled = False


class _Worker:
    """One pool slot: a thread, its task inbox and its cancel flag."""

    __slots__ = ("slot", "inbox", "cancel", "thread")

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.inbox: queue.SimpleQueue = queue.SimpleQueue()
        self.cancel = threading.Event()
        self.thread: threading.Thread | None = None


def _worker_loop(eng, worker: _Worker, done: queue.SimpleQueue) -> None:
    """Worker thread body: drain the inbox until the ``None`` farewell.

    Runs in a worker thread; ``eng`` is only ever passed through to
    :func:`_run_thread_task`, which documents the per-access safety
    arguments.
    """
    while True:
        item = worker.inbox.get()
        if item is None:
            return
        share, reply = item
        try:
            deltas = []
            for task in share:
                if worker.cancel.is_set():
                    raise BlockCancelled(task.block.proc, task.block.start)
                # thread-safe: see _run_thread_task's annotations.
                deltas.append(_run_thread_task(eng, task, worker.cancel))
            reply.deltas = deltas
        except BlockCancelled:
            reply.cancelled = True
        except BaseException:
            reply.error = traceback.format_exc()
        done.put((worker.slot, reply))


class _ThreadSupervisor:
    """Deadline-based hang detection for the in-process worker pool.

    The process supervisor's state machine, re-targeted at threads::

        busy --done--> merged
        busy --deadline passes--> overdue --cancel flag--> acknowledged
            --reset state + redispatch--> busy
        acknowledged, budget exhausted or poison block --> degraded
        overdue, grace expires unacknowledged --> wedged (BackendError)

    ``max_worker_respawns`` bounds cancellation recoveries (the thread
    survives and is reused, so nothing literally respawns unless a worker
    thread dies outright), and the poison-block counter matches the
    process supervisor's, so configuration knobs keep one meaning across
    backends.  Counters land on the engine's shared
    :class:`~repro.core.supervise.SupervisionStats`; operational records
    flow through the unified oplog (:mod:`repro.obs.oplog`) with the
    same shape as the process supervisor's (``pid`` carries the worker's
    native thread id).
    """

    def __init__(self, backend: "ThreadsBackend") -> None:
        self.backend = backend
        eng = backend.eng
        config = getattr(eng, "config", None)
        self.timeout = float(getattr(config, "worker_timeout", 30.0))
        self.factor = float(getattr(config, "worker_timeout_factor", 8.0))
        self.max_recoveries = int(getattr(config, "max_worker_respawns", 3))
        stats = getattr(eng, "supervision", None)
        self.stats = stats if stats is not None else SupervisionStats()
        self.recoveries_used = 0
        self._block_deaths: dict[tuple[int, int], int] = {}
        self._per_block_est = 0.0
        self._sent: dict[int, float] = {}
        self._shares: list[list] = []
        self._t0 = time.monotonic()

    # -- dispatch/collect loop ---------------------------------------------------

    def run_shares(self, shares: list[list]) -> list:
        """Send the non-empty shares, survive hangs, return all replies."""
        self._shares = shares
        replies: list = [[] for _ in shares]
        pending: dict[int, float] = {}
        cancelling: dict[int, float] = {}
        for k, share in enumerate(shares):
            if share:
                self._dispatch(k, share, pending)
        while pending or cancelling:
            now = time.monotonic()
            deadline = min([*pending.values(), *cancelling.values()])
            try:
                k, reply = self.backend._done.get(
                    timeout=max(0.0, deadline - now)
                )
            except queue.Empty:
                self._check_deadlines(pending, cancelling)
                continue
            if k in pending:
                del pending[k]
            elif k in cancelling:
                del cancelling[k]
                # Acknowledged (or completed just before seeing the
                # flag): the worker is idle again; re-arm its slot.
                self.backend._workers[k].cancel.clear()
            else:  # pragma: no cover - defensive: stale completion
                continue
            if reply.error is not None:
                raise BackendError(
                    f"{self.backend._share_context(k, self._shares[k])} "
                    f"raised:\n{reply.error}",
                    loop=self.backend.eng.loop.name,
                )
            if reply.cancelled:
                self._recover(k, pending)
            else:
                replies[k] = reply.deltas
                self._note_duration(k, self._shares[k])
        # Nothing is in flight between stages; the resource sampler reads
        # ``_sent`` for its inflight gauge, so don't leave stale entries.
        self._sent.clear()
        return replies

    def _dispatch(self, k: int, share: list, pending: dict) -> None:
        backend = self.backend
        worker = backend._workers[k]
        if worker.thread is None or not worker.thread.is_alive():
            # A worker thread only dies if something escaped its loop;
            # replace it (this is the literal respawn case).
            self._budget_check(k, share)
            backend._start_worker(worker)
            self.stats.respawns += 1
            self.recoveries_used += 1
            self._log("worker-respawned", k, share)
        reply = _Reply()
        worker.inbox.put((share, reply))
        now = time.monotonic()
        self._sent[k] = now
        pending[k] = now + self._deadline_for(share)

    def _check_deadlines(self, pending: dict, cancelling: dict) -> None:
        now = time.monotonic()
        for k in [k for k, dl in pending.items() if now >= dl]:
            del pending[k]
            self.stats.overdue += 1
            self._log("worker-overdue", k, self._shares[k])
            self.backend._workers[k].cancel.set()
            cancelling[k] = now + self._grace()
        for k in [k for k, dl in cancelling.items() if now >= dl]:
            # Wedged inside one iteration: the flag is only checked at
            # iteration boundaries, so native code that never returns
            # cannot be stopped from in-process -- and a degraded serial
            # rerun would race the still-running thread's writes.
            self._log("worker-wedged", k, self._shares[k])
            raise BackendError(
                f"{self.backend._share_context(k, self._shares[k])} missed "
                f"its dispatch deadline and did not acknowledge cancellation "
                f"within {self._grace():.1f}s (thread wedged inside an "
                "iteration; threads cannot be force-killed -- use the fork "
                "or shm backend for workloads with non-returning bodies)",
                loop=self.backend.eng.loop.name,
            )

    def _recover(self, k: int, pending: dict) -> None:
        """An overdue share acknowledged its cancellation: roll the blocks'
        shared state back to dispatch-time contents and re-dispatch."""
        share = self._shares[k]
        for task in share:
            key = (task.stage, task.pos)
            deaths = self._block_deaths.get(key, 0) + 1
            self._block_deaths[key] = deaths
            if deaths >= _MAX_BLOCK_DEATHS:
                self.stats.quarantined_blocks += 1
                self._fail_pool(PoolDegradation(
                    self.backend.name,
                    f"block at stage {task.stage} position {task.pos} "
                    f"overran its deadline {deaths} times (poison block)",
                    stage=task.stage, worker=k,
                    blocks=tuple(t.pos for t in share),
                ), pending)
        self._budget_check(k, share, pending)
        self.backend._reset_dispatch_state(share)
        time.sleep(min(_BACKOFF_CAP, _BACKOFF_BASE * (2 ** self.recoveries_used)))
        self.recoveries_used += 1
        self._dispatch(k, share, pending)
        self.stats.redispatched_blocks += len(share)
        self.stats.stage_redispatched_procs.extend(
            task.block.proc for task in share
        )
        self._log("blocks-redispatched", k, share)

    def _budget_check(self, k: int, share: list, pending: dict | None = None) -> None:
        if self.recoveries_used >= self.max_recoveries:
            self._fail_pool(PoolDegradation(
                self.backend.name,
                "worker recovery budget exhausted "
                f"(max_worker_respawns={self.max_recoveries})",
                stage=share[0].stage if share else None, worker=k,
                blocks=tuple(t.pos for t in share),
            ), pending or {})

    def _fail_pool(self, exc: PoolDegradation, pending: dict) -> None:
        """Give up on this pool: stop every in-flight worker (cancel flag
        + drain), then roll *all* dispatched blocks' shared state back to
        dispatch-time contents -- direct execution means even completed,
        not-yet-merged blocks left views/shadows/partials in place, and
        the whole stage re-runs on the fallback backend."""
        self.backend._quiesce(pending)
        for share in self._shares:
            self.backend._reset_dispatch_state(share)
        self._log("pool-degraded", exc.worker if exc.worker is not None else -1,
                  [], extra={"reason": str(exc)})
        raise exc

    # -- deadlines ---------------------------------------------------------------

    def _deadline_for(self, share: list) -> float:
        """Same policy as the process supervisor: the configured floor, or
        the adaptive estimate when that is larger."""
        return max(
            self.timeout,
            self.factor * self._per_block_est * max(1, len(share)),
        )

    def _grace(self) -> float:
        """Acknowledgment window after the cancel flag is set: one slow
        iteration must fit, so scale with the per-block estimate."""
        return max(_CANCEL_GRACE, self.factor * self._per_block_est)

    def _note_duration(self, k: int, share: list) -> None:
        if share:
            dur = time.monotonic() - self._sent[k]
            self._per_block_est = max(self._per_block_est, dur / len(share))

    # -- operational log ---------------------------------------------------------

    def _log(self, event: str, k: int, share: list, extra: dict | None = None) -> None:
        workers = self.backend._workers or []
        thread = workers[k].thread if 0 <= k < len(workers) else None
        pid = thread.native_id if thread is not None else None
        log_supervision(
            self.backend.name, event, k, pid, share, self._t0, extra
        )


class ThreadsBackend(ExecutionBackend):
    """Persistent in-process worker threads over the kernel seam."""

    name = "threads"

    def __init__(self, eng) -> None:
        super().__init__(eng)
        if getattr(eng, "os_chaos", None) is not None:
            raise ConfigurationError(
                "os_chaos delivers SIGKILL/SIGSTOP to worker processes; "
                "the threads backend's workers share the engine's process "
                "-- use backend='fork' or 'shm' for OS-level chaos"
            )
        self.thread_mode = thread_mode()
        self._workers: list[_Worker] | None = None
        self._done: queue.SimpleQueue = queue.SimpleQueue()
        self._supervisor: _ThreadSupervisor | None = None

    # -- pool lifecycle ----------------------------------------------------------

    def _ensure_workers(self) -> None:
        if self._workers is not None:
            return
        eng = self.eng
        n_workers = eng.config.backend_workers or min(
            eng.n_procs, os.cpu_count() or 1
        )
        n_workers = max(1, min(n_workers, eng.n_procs))
        workers = []
        for slot in range(n_workers):
            worker = _Worker(slot)
            self._start_worker(worker)
            workers.append(worker)
        self._workers = workers
        get_oplog().log(
            "backend", "pool-started", backend=self.name,
            workers=n_workers, mode=self.thread_mode,
        )

    def _start_worker(self, worker: _Worker) -> None:
        worker.cancel.clear()
        worker.thread = threading.Thread(
            target=_worker_loop, args=(self.eng, worker, self._done),
            name=f"repro-{self.name}-{worker.slot}", daemon=True,
        )
        worker.thread.start()

    def _share_context(self, k: int, share: list[BlockTask]) -> str:
        worker = self._workers[k]
        ident = worker.thread.native_id if worker.thread is not None else None
        if share:
            where = (
                f"stage {share[0].stage} blocks {[t.pos for t in share]} "
                f"(procs {[t.block.proc for t in share]})"
            )
        else:
            where = "an empty share"
        return f"{self.name} backend worker {k} (thread {ident}) executing {where}"

    # -- recovery ----------------------------------------------------------------

    def _reset_dispatch_state(self, share: list[BlockTask]) -> None:
        """Roll one share's directly-executed side effects back to their
        dispatch-time (clear) contents: processor-state planes and mark
        lists.  Untested writes were already rolled back by the worker's
        thread-local checkpoint; ``iter_times`` persist by design and are
        overwritten on re-execution."""
        eng = self.eng
        for task in share:
            if task.all_private:
                continue  # fully private state, nothing shared to undo
            state = eng.states.get(task.block.proc)
            if state is not None:
                state.reset()
            if task.marklists:
                for ml in task.marklists.values():
                    ml.reset()

    def _quiesce(self, pending: dict) -> None:
        """Stop every in-flight share (degradation path): flag them all,
        then drain acknowledgments so no worker still runs when shared
        state is rolled back."""
        if not pending:
            return
        for k in pending:
            self._workers[k].cancel.set()
        grace = (
            self._supervisor._grace() if self._supervisor is not None
            else _CANCEL_GRACE
        )
        deadline = time.monotonic() + grace
        waiting = set(pending)
        while waiting:
            try:
                k, reply = self._done.get(
                    timeout=max(0.0, deadline - time.monotonic())
                )
            except queue.Empty:
                raise BackendError(
                    f"{self.name} backend could not quiesce workers "
                    f"{sorted(waiting)} for degradation (threads wedged "
                    "inside an iteration cannot be force-killed)",
                    loop=self.eng.loop.name,
                ) from None
            waiting.discard(k)
        for k in pending:
            self._workers[k].cancel.clear()
        pending.clear()

    # -- dispatch ----------------------------------------------------------------

    def run_blocks(self, tasks: list[BlockTask]) -> list[BlockOutcome]:
        eng = self.eng
        if not tasks:
            return []
        check_unique_procs(self.name, tasks)
        self._ensure_workers()
        hoist_injection(eng, tasks)
        for task in tasks:
            task.collect_metrics = getattr(eng, "metrics_enabled", False)
            task.collect_spans = getattr(eng, "spans_enabled", False)
        shares: list[list[BlockTask]] = [[] for _ in self._workers]
        for k, task in enumerate(tasks):
            shares[k % len(shares)].append(task)
        if self._supervisor is None:
            self._supervisor = _ThreadSupervisor(self)
        replies = self._supervisor.run_shares(shares)
        deltas: dict = {}
        for reply in replies:
            for delta in reply:
                deltas[delta.pos] = delta
        return [self._merge(task, deltas[task.pos]) for task in tasks]

    def _merge(self, task: BlockTask, delta: _ThreadDelta) -> BlockOutcome:
        """Fold one block's delta into the engine, in block-position order.

        Views, shadows, partials, iteration times, the executed list and
        mark lists were written in place by direct execution; only the
        order-sensitive residue replays here.
        """
        eng = self.eng
        machine = eng.machine
        block = task.block
        proc = block.proc
        for category, amount in delta.charges:
            machine.charge(proc, category, amount)
        if delta.metrics is not None:
            machine.metrics.merge(delta.metrics)
        outcome = BlockOutcome(
            pos=task.pos, block=block, fault=delta.fault,
            fault_permanent=delta.fault_permanent,
            exit_iteration=delta.exit_iteration,
            inductions=delta.inductions,
        )
        if task.collect_spans:
            outcome.host_start = eng.rebase_host(delta.host_start)
            outcome.host_dur = delta.host_dur
            outcome.virt_dur = delta.virt_dur
        if task.all_private:
            return outcome
        for name, (indices, values) in delta.untested.items():
            if eng.ckpt is not None:
                eng.ckpt.note_write_many(proc, name, indices)
            get_kernels().scatter(machine.memory[name].data, indices, values)
        if eng.untested_log is not None:
            for name, index in delta.untested_reads:
                eng.untested_log.note_read(proc, name, index)
            for name, index in delta.untested_writes:
                eng.untested_log.note_write(proc, name, index)
        return outcome

    def resource_info(self) -> dict:
        """Live thread count and per-worker inbox depths for the sampler.

        Threads share the engine process, so there are no worker pids;
        ``worker_threads`` carries the live-thread count instead and
        ``queue_depths`` the (approximate) inbox backlogs.
        """
        info = super().resource_info()
        workers = self._workers or []
        try:
            info["worker_threads"] = sum(
                1 for worker in list(workers)
                if worker.thread is not None and worker.thread.is_alive()
            )
            info["queue_depths"] = [
                worker.inbox.qsize() for worker in list(workers)
            ]
        except (TypeError, ValueError, NotImplementedError):
            pass  # pragma: no cover - qsize unsupported / torn read
        supervisor = self._supervisor
        if supervisor is not None:
            try:
                shares = list(supervisor._shares)
                info["inflight"] = sum(
                    len(shares[k]) for k in list(supervisor._sent)
                    if 0 <= k < len(shares)
                )
            except (TypeError, ValueError):  # pragma: no cover - torn read
                pass
        return info

    def close(self) -> None:
        if self._workers is None:
            return
        workers, self._workers = self._workers, None
        get_oplog().log(
            "backend", "pool-closed", backend=self.name,
            workers=len(workers),
        )
        for worker in workers:
            worker.inbox.put(None)
        for worker in workers:
            if worker.thread is not None:
                worker.thread.join(timeout=2.0)
        # A worker still alive here is wedged mid-iteration; it is
        # daemonic and cannot outlive the interpreter.
        self._supervisor = None


BACKENDS[ThreadsBackend.name] = ThreadsBackend
