"""Speculative block execution: privatized contexts and virtual-time charging.

One :class:`ProcessorState` holds everything a processor accumulates during a
speculative stage: private views and shadows of the tested arrays, reduction
partials, and measured per-iteration times (fed back to the load balancer).
:func:`execute_block` runs a contiguous block of iterations through a
:class:`SpeculativeContext` and charges the machine's timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.loopir.context import IterationContext
from repro.loopir.loop import SpeculativeLoop
from repro.machine.checkpoint import CheckpointManager
from repro.machine.machine import Machine
from repro.machine.memory import PrivateView, make_private_view
from repro.machine.timeline import Category
from repro.shadow import ShadowArray, make_shadow
from repro.shadow.marklist import IterationMarks
from repro.util.blocks import Block


class BlockCancelled(Exception):
    """Internal control flow: a cooperative cancellation flag was observed
    at an iteration boundary (:func:`execute_block`'s ``cancel``).

    The threads backend's supervisor cannot SIGKILL an overdue worker the
    way the process supervisors do, so it sets the worker's cancel flag
    and the block aborts itself at the next iteration boundary -- the
    granularity at which the GIL-releasing kernel calls return control.
    The raiser has *not* cleaned up: partial private state and untested
    writes are still in place, exactly like a block cut short by SIGKILL,
    and the supervisor rolls them back before re-dispatching.
    """

    def __init__(self, proc: int, iteration: int) -> None:
        self.proc = proc
        self.iteration = iteration
        super().__init__(
            f"block on proc {proc} cancelled before iteration {iteration}"
        )


@dataclass
class ProcessorState:
    """Per-processor speculative state for one stage."""

    proc: int
    views: dict[str, PrivateView]
    shadows: dict[str, ShadowArray]
    partials: dict[str, dict[int, object]] = field(default_factory=dict)
    iter_times: dict[int, float] = field(default_factory=dict)
    """Measured per-iteration time incl. marking/copy-in (balancer input)."""
    iter_work: dict[int, float] = field(default_factory=dict)
    """Useful-work-only per-iteration time (sequential-time accounting)."""
    executed: list[Block] = field(default_factory=list)

    def distinct_refs(self) -> int:
        return sum(shadow.distinct_refs() for shadow in self.shadows.values())

    def n_written(self) -> int:
        written = sum(view.n_written() for view in self.views.values())
        written += sum(len(p) for p in self.partials.values())
        return written

    def reset(self) -> None:
        """Discard private data and marks (between recursive stages)."""
        for view in self.views.values():
            view.reset()
        for shadow in self.shadows.values():
            shadow.reset()
        self.partials.clear()
        self.executed.clear()
        # iter_times persist: the balancer wants the latest measurement of
        # every iteration regardless of which stage finally committed it.

    def preload(self, machine: "Machine", skip: frozenset[str] = frozenset()) -> int:
        """Pre-initialize this processor's dense private views by bulk copy
        (the ``pre_initialize`` configuration option); charges the copy to
        the processor.  Reduction arrays are skipped -- their partials
        start at the operator identity, never at the shared values."""
        total = 0
        for name, view in self.views.items():
            if name in skip:
                continue
            total += view.preload()
        if total:
            machine.charge(
                self.proc,
                Category.COPY_IN,
                machine.costs.bulk_copy_per_elem * total,
            )
        return total


def make_processor_state(machine: Machine, loop: SpeculativeLoop, proc: int) -> ProcessorState:
    """Allocate views and shadows for every tested array of ``loop``."""
    views: dict[str, PrivateView] = {}
    shadows: dict[str, ShadowArray] = {}
    for spec in loop.arrays:
        if not spec.tested:
            continue
        shared = machine.memory[spec.name]
        views[spec.name] = make_private_view(shared, sparse=spec.sparse)
        shadows[spec.name] = make_shadow(len(shared), sparse=spec.sparse)
    return ProcessorState(proc=proc, views=views, shadows=shadows)


def make_plain_state(proc: int) -> ProcessorState:
    """Processor state with no views and no shadows: every access takes the
    direct-shared-memory path with zero marking/copy-in charges (the
    certified-DOALL fast path of :mod:`repro.core.fastpath`)."""
    return ProcessorState(proc=proc, views={}, shadows={})


def make_all_private_state(machine: Machine, loop: SpeculativeLoop, proc: int) -> ProcessorState:
    """Processor state where *every* array is privatized, untested ones
    included (side-effect-free execution: the induction recipe's range
    collection must keep even untested writes out of shared memory, their
    indices are provisional)."""
    views: dict[str, PrivateView] = {}
    shadows: dict[str, ShadowArray] = {}
    for spec in loop.arrays:
        shared = machine.memory[spec.name]
        views[spec.name] = make_private_view(shared, sparse=spec.sparse)
        shadows[spec.name] = make_shadow(len(shared), sparse=spec.sparse)
    return ProcessorState(proc=proc, views=views, shadows=shadows)


class SpeculativeContext(IterationContext):
    """Execution context for one processor during one speculative stage.

    Tested arrays go through private views with shadow marking and on-demand
    copy-in; untested arrays are written to shared memory under checkpoint.
    Virtual time is charged to the owning processor as accesses happen.
    """

    __slots__ = (
        "_machine",
        "_loop",
        "_state",
        "_ckpt",
        "_inductions",
        "_iter_marks",
        "_iter_time",
        "_iter_work",
        "_costs",
        "_slowdown",
        "_untested_log",
        "_m_marks",
        "_m_copyin",
        "_m_ckpt",
        "exit_iteration",
        "fault",
        "fault_permanent",
    )

    def __init__(
        self,
        machine: Machine,
        loop: SpeculativeLoop,
        state: ProcessorState,
        checkpoints: CheckpointManager | None,
        inductions: dict[str, int] | None = None,
        slowdown: float = 1.0,
        untested_log=None,
    ) -> None:
        super().__init__()
        self._machine = machine
        self._loop = loop
        self._state = state
        self._ckpt = checkpoints
        self._inductions = dict(inductions or {})
        # Optional per-iteration mark sink (DDG extraction); maps array name
        # to the current iteration's IterationMarks.
        self._iter_marks: dict[str, IterationMarks] | None = None
        self._iter_time = 0.0
        self._iter_work = 0.0
        self._costs = machine.costs
        # Straggler fault: every charge of this block is stretched by the
        # multiplier, but iter_work stays nominal -- the useful work done
        # is unchanged, only the time to do it grows.
        self._slowdown = slowdown
        # Self-check: per-stage recorder of untested-array traffic.
        self._untested_log = untested_log
        # Metrics accumulators: plain slot updates on the hot paths, folded
        # into the registry once per block (flush_metrics) -- and only when
        # metrics are on, so the disabled cost is one integer add per access.
        self._m_marks = 0
        self._m_copyin: dict[str, int] = {}
        self._m_ckpt: dict[str, int] = {}
        self.exit_iteration: int | None = None
        self.fault: str | None = None
        """Fault class that aborted this block (``None`` = ran clean)."""
        self.fault_permanent = False
        """A fail-stop fault removed the processor for good."""

    # -- wiring used by the drivers --------------------------------------------

    def set_iteration_marks(self, marks: dict[str, IterationMarks] | None) -> None:
        self._iter_marks = marks

    def begin_iteration(self, iteration: int) -> None:
        self.iteration = iteration
        self._iter_time = 0.0
        self._iter_work = 0.0

    def end_iteration(self) -> tuple[float, float]:
        """Return ``(measured time, work-only time)`` for this iteration."""
        return self._iter_time, self._iter_work

    def induction_values(self) -> dict[str, int]:
        return dict(self._inductions)

    def _charge(self, category: Category, amount: float) -> None:
        charged = amount * self._slowdown
        self._machine.charge(self._state.proc, category, charged)
        self._iter_time += charged
        if category is Category.WORK:
            self._iter_work += amount

    # -- memory access ----------------------------------------------------------

    def load(self, name: str, index: int):
        if name in self._loop.reductions:
            raise ValueError(
                f"array {name!r} is declared a reduction; use update() only"
            )
        view = self._state.views.get(name)
        if view is None:
            # Untested array: direct shared read, no instrumentation.
            if self._untested_log is not None:
                self._untested_log.note_read(self._state.proc, name, index)
            return self._machine.memory[name].data[index]
        value, copied_in = view.load(index)
        self._state.shadows[name].mark_read(index)
        self._m_marks += 1
        self._charge(Category.MARK, self._costs.mark)
        if copied_in:
            self._m_copyin[name] = self._m_copyin.get(name, 0) + 1
            self._charge(Category.COPY_IN, self._costs.copy_in)
        if self._iter_marks is not None:
            self._iter_marks[name].mark_read(index)
        return value

    def store(self, name: str, index: int, value) -> None:
        if name in self._loop.reductions:
            raise ValueError(
                f"array {name!r} is declared a reduction; use update() only"
            )
        view = self._state.views.get(name)
        if view is None:
            if self._untested_log is not None:
                self._untested_log.note_write(self._state.proc, name, index)
            if self._ckpt is not None and name in self._ckpt.names:
                saved = self._ckpt.note_write(self._state.proc, name, index)
                if saved:
                    self._m_ckpt[name] = self._m_ckpt.get(name, 0) + saved
                    self._charge(
                        Category.CHECKPOINT, self._costs.checkpoint_per_elem * saved
                    )
            self._machine.memory[name].data[index] = value
            return
        view.store(index, value)
        self._state.shadows[name].mark_write(index)
        self._m_marks += 1
        self._charge(Category.MARK, self._costs.mark)
        if self._iter_marks is not None:
            self._iter_marks[name].mark_write(index, value)

    def update(self, name: str, index: int, value) -> None:
        op = self._loop.reductions.get(name)
        if op is None:
            raise ValueError(f"array {name!r} has no declared reduction operator")
        partial = self._state.partials.setdefault(name, {})
        partial[index] = op.combine(partial.get(index, op.identity), value)
        self._state.shadows[name].mark_update(index)
        self._m_marks += 1
        self._charge(Category.MARK, self._costs.mark)
        if self._iter_marks is not None:
            self._iter_marks[name].mark_update(index)

    # -- bulk memory access -------------------------------------------------------

    def load_many(self, name: str, indices) -> np.ndarray:
        """Vectorized :meth:`load` over an index array of one tested array.

        Marking and charging are batched: one ``mark_read_many`` on the
        shadow, one MARK charge of ``mark * len(indices)``, one COPY_IN
        charge for the distinct elements actually copied in.  Semantically
        a single bulk read: every index sees the current private state,
        none of this batch's own side effects.
        """
        if name in self._loop.reductions:
            raise ValueError(
                f"array {name!r} is declared a reduction; use update() only"
            )
        idx = np.asarray(indices, dtype=np.int64)
        view = self._state.views.get(name)
        if view is None:
            return np.array([self.load(name, int(i)) for i in idx])
        values, copied = view.load_many(idx)
        self._state.shadows[name].mark_read_many(idx)
        self._m_marks += len(idx)
        self._charge(Category.MARK, self._costs.mark * len(idx))
        if copied:
            self._m_copyin[name] = self._m_copyin.get(name, 0) + copied
            self._charge(Category.COPY_IN, self._costs.copy_in * copied)
        if self._iter_marks is not None:
            marks = self._iter_marks[name]
            for i in idx.tolist():
                marks.mark_read(i)
        return values

    def store_many(self, name: str, indices, values) -> None:
        """Vectorized :meth:`store` over parallel index/value arrays.

        Later duplicates win, matching the scalar loop.  One
        ``mark_write_many`` on the shadow, one batched MARK charge.
        """
        if name in self._loop.reductions:
            raise ValueError(
                f"array {name!r} is declared a reduction; use update() only"
            )
        idx = np.asarray(indices, dtype=np.int64)
        vals = np.asarray(values)
        view = self._state.views.get(name)
        if view is None:
            for i, v in zip(idx.tolist(), vals):
                self.store(name, i, v)
            return
        view.store_many(idx, vals)
        self._state.shadows[name].mark_write_many(idx)
        self._m_marks += len(idx)
        self._charge(Category.MARK, self._costs.mark * len(idx))
        if self._iter_marks is not None:
            marks = self._iter_marks[name]
            for i, v in zip(idx.tolist(), vals):
                marks.mark_write(i, v)

    # -- induction ---------------------------------------------------------------

    def bump(self, name: str) -> int:
        if name not in self._inductions:
            raise KeyError(
                f"induction variable {name!r} not initialized for this stage"
            )
        value = self._inductions[name]
        self._inductions[name] = value + 1
        return value

    def peek(self, name: str) -> int:
        return self._inductions[name]

    # -- costs ----------------------------------------------------------------

    def work(self, units: float) -> None:
        if units < 0:
            raise ValueError("work units must be non-negative")
        self._charge(Category.WORK, units * self._costs.omega)

    # -- premature exit -----------------------------------------------------------

    def exit_loop(self) -> None:
        if self.exit_iteration is None:
            self.exit_iteration = self.iteration

    # -- metrics ------------------------------------------------------------------

    def flush_metrics(self, registry, iterations: int) -> None:
        """Fold this block's accumulated counts into ``registry``.

        Called once per block (never per access); byte counts derive from
        the shared arrays' element sizes so "how much data moved" is
        reportable without touching the hot paths.
        """
        registry.counter("shadow.marks").inc(self._m_marks)
        memory = self._machine.memory
        for name, n in self._m_copyin.items():
            registry.counter("shadow.copy_in.elements").inc(n)
            registry.counter("shadow.copy_in.bytes").inc(
                n * memory[name].data.itemsize
            )
        for name, n in self._m_ckpt.items():
            registry.counter("checkpoint.saved.elements").inc(n)
            registry.counter("checkpoint.saved.bytes").inc(
                n * memory[name].data.itemsize
            )
        registry.counter("exec.blocks").inc()
        registry.histogram("exec.block_iterations").observe(iterations)
        if self.fault is not None:
            registry.counter("faults.blocks_hit").inc()


def execute_block(
    machine: Machine,
    loop: SpeculativeLoop,
    state: ProcessorState,
    block: Block,
    checkpoints: CheckpointManager | None,
    inductions: dict[str, int] | None = None,
    marklists: dict[str, "object"] | None = None,
    injector=None,
    stage: int = 0,
    untested_log=None,
    slowdown: float | None = None,
    death: tuple[int, bool] | None = None,
    cancel=None,
) -> SpeculativeContext:
    """Run ``block``'s iterations on ``block.proc``, charging virtual time.

    ``marklists`` (array name -> :class:`~repro.shadow.marklist.MarkList`)
    switches on iteration-level marking for DDG extraction.  Returns the
    context so callers can read final induction values.

    ``injector`` (a :class:`~repro.faults.injector.FaultInjector`) arms
    this block for fault injection under the driver's stage counter
    ``stage``: a planned straggler stretches every charge, and a planned
    fail-stop kills the processor at an iteration boundary mid-block --
    the context comes back with ``ctx.fault`` set and the partial work
    (including untested writes, already logged by the checkpoint) awaiting
    the driver's rollback.  ``untested_log`` records untested-array
    traffic for the self-check isolation verifier.

    The fork execution backend queries the injector in the parent and
    passes the pre-resolved ``slowdown``/``death`` explicitly (worker
    processes have no injector); explicit values take precedence.

    ``cancel`` (an object with ``is_set()``, e.g. a ``threading.Event``)
    is the threads backend's cooperative hang-recovery hook: when it
    reads true at an iteration boundary the block raises
    :class:`BlockCancelled` without cleaning up, leaving rollback to the
    supervisor.  ``None`` (every other caller) costs one identity check
    per iteration.
    """
    if slowdown is None:
        slowdown = 1.0
        if injector is not None:
            slowdown = injector.slowdown(stage, block.proc)
    if death is None and injector is not None:
        death = injector.fail_stop_point(stage, block.proc, len(block))
    ctx = SpeculativeContext(
        machine, loop, state, checkpoints, inductions,
        slowdown=slowdown, untested_log=untested_log,
    )
    omega = machine.costs.omega
    completed = 0
    for i in block.iterations():
        if cancel is not None and cancel.is_set():
            raise BlockCancelled(block.proc, i)
        if death is not None and completed >= death[0]:
            # Fail-stop: the processor dies here; everything it did this
            # stage (private state, untested writes) is garbage to roll
            # back, and any exit it signalled cannot be trusted.
            ctx.fault = "fail-stop"
            ctx.fault_permanent = death[1]
            break
        ctx.begin_iteration(i)
        if marklists is not None:
            ctx.set_iteration_marks(
                {name: ml.open_level(i) for name, ml in marklists.items()}
            )
        base = loop.work_of(i) * omega
        if base:
            ctx._charge(Category.WORK, base)
        loop.body(ctx, i)
        measured, work_only = ctx.end_iteration()
        state.iter_times[i] = measured
        state.iter_work[i] = work_only
        completed += 1
        if ctx.exit_iteration is not None:
            # The iteration that signalled the exit completes; the rest of
            # the block never executes (speculatively validated later).
            break
    state.executed.append(block)
    metrics = getattr(machine, "metrics", None)
    if metrics is not None and metrics.enabled:
        ctx.flush_metrics(metrics, completed)
    return ctx
