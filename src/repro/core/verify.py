"""Loop certification: run a loop under every applicable strategy and check
each against the sequential oracle.

When porting a new loop onto the runtime, the failure mode to fear is a
mis-declared array (an untested array that actually carries cross-iteration
dependences, a reduction array also accessed normally, ...).  This utility
is the library's answer: one call exercises the loop under every strategy
and reports, per strategy, whether the final state matched a sequential
execution, along with the key metrics -- so both correctness and the
strategy choice are settled empirically before production use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.sequential import run_sequential
from repro.config import RuntimeConfig
from repro.core.results import RunResult
from repro.core.runner import parallelize
from repro.errors import ReproError
from repro.loopir.context import SequentialContext
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.util.blocks import partition_even
from repro.util.tables import format_table


@dataclass
class StrategyVerdict:
    """Outcome of one strategy on the loop under certification."""

    label: str
    ok: bool
    detail: str
    result: RunResult | None = None

    @property
    def speedup(self) -> float | None:
        return self.result.speedup if self.result else None


@dataclass
class Certificate:
    """All verdicts plus a summary table."""

    loop_name: str
    n_procs: int
    verdicts: list[StrategyVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def best(self) -> StrategyVerdict | None:
        candidates = [v for v in self.verdicts if v.ok and v.result is not None]
        if not candidates:
            return None
        return max(candidates, key=lambda v: v.result.speedup)

    def render(self) -> str:
        rows = []
        for v in self.verdicts:
            rows.append(
                [
                    v.label,
                    "ok" if v.ok else "MISMATCH",
                    round(v.result.speedup, 2) if v.result else "-",
                    v.result.n_restarts if v.result else "-",
                    v.detail,
                ]
            )
        verdict = "CERTIFIED" if self.ok else "FAILED"
        return format_table(
            ["strategy", "state", "speedup", "restarts", "detail"],
            rows,
            title=f"{self.loop_name} on p={self.n_procs}: {verdict}",
        )


def default_strategies(n_procs: int) -> list[RuntimeConfig]:
    return [
        RuntimeConfig.nrd(),
        RuntimeConfig.rd(),
        RuntimeConfig.adaptive(),
        RuntimeConfig.sw(window_size=2 * n_procs),
        RuntimeConfig.sw(window_size=8 * n_procs),
    ]


def check_untested_contract(loop: SpeculativeLoop, n_procs: int) -> list[str]:
    """Validate the statically-analyzable contract of untested arrays.

    Traces a sequential execution, maps iterations to their block-schedule
    processors, and flags any untested element written by more than one
    processor or read by a processor other than its writer.  Such sharing
    is invisible to the simulator's in-order write-through (and racy on a
    real machine), so it must be caught by declaration analysis rather
    than by state comparison.
    """
    untested = set(loop.untested_names)
    if not untested or loop.n_iterations == 0:
        return []
    memory = loop.materialize()
    ctx = SequentialContext(
        memory,
        reductions=loop.reductions,
        inductions=loop.initial_inductions(),
        trace=True,
    )
    for i in range(loop.n_iterations):
        ctx.iteration = i
        loop.body(ctx, i)
        if ctx.exited:
            break
    blocks = partition_even(0, loop.n_iterations, list(range(n_procs)))

    def proc_of(iteration: int) -> int:
        for block in blocks:
            if iteration in block:
                return block.proc
        return blocks[-1].proc

    writers: dict[str, dict[int, set[int]]] = {name: {} for name in untested}
    problems: list[str] = []
    flagged: set[tuple[str, int]] = set()
    for rec in ctx.records:
        if rec.array not in untested:
            continue
        proc = proc_of(rec.iteration)
        element_writers = writers[rec.array].setdefault(rec.index, set())
        key = (rec.array, rec.index)
        if rec.kind == "w":
            element_writers.add(proc)
            if len(element_writers) > 1 and key not in flagged:
                flagged.add(key)
                problems.append(
                    f"{rec.array}[{rec.index}]: written by processors "
                    f"{sorted(element_writers)}; declare it tested"
                )
        elif element_writers and proc not in element_writers and key not in flagged:
            flagged.add(key)
            problems.append(
                f"{rec.array}[{rec.index}]: read on processor {proc} but "
                f"written on {sorted(element_writers)}; declare it tested"
            )
    return problems


def certify(
    loop_factory,
    n_procs: int,
    strategies: list[RuntimeConfig] | None = None,
    costs: CostModel | None = None,
    tolerant: bool = False,
) -> Certificate:
    """Certify a loop: every strategy must reproduce the sequential state.

    ``loop_factory`` is a zero-argument callable returning a fresh
    :class:`~repro.loopir.loop.SpeculativeLoop` (each run needs its own
    initial state).  It must be *deterministic* -- every call must build
    the identical loop (draw any random inputs once, outside the factory),
    otherwise the runs and the oracle see different programs.
    ``tolerant=True`` compares with ``allclose`` -- required for
    floating-point reductions, whose parallel fold order legitimately
    perturbs the last bits.
    """
    strategies = strategies or default_strategies(n_procs)
    probe: SpeculativeLoop = loop_factory()
    reference = run_sequential(loop_factory(), costs=costs).memory.snapshot()
    cert = Certificate(loop_name=probe.name, n_procs=n_procs)

    contract_problems = check_untested_contract(loop_factory(), n_procs)
    cert.verdicts.append(
        StrategyVerdict(
            "untested-contract",
            ok=not contract_problems,
            detail="; ".join(contract_problems[:3]),
        )
    )

    for config in strategies:
        label = config.label()
        try:
            # Each row certifies the *speculative* strategy it names; the
            # static front-end would otherwise hijack certifiable loops
            # onto the fast path and every row would test the same thing.
            result = parallelize(
                loop_factory(), n_procs,
                config.with_options(certify="off"), costs,
            )
        except ReproError as exc:
            cert.verdicts.append(
                StrategyVerdict(label, ok=False, detail=f"{type(exc).__name__}: {exc}")
            )
            continue
        matches = (
            result.memory.allclose(reference)
            if tolerant
            else result.memory.equals(reference)
        )
        detail = "" if matches else "final state differs from sequential"
        cert.verdicts.append(
            StrategyVerdict(label, ok=matches, detail=detail, result=result)
        )
    return cert
