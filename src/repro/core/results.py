"""Result types: per-stage records, per-run summaries, program aggregates.

The paper's headline metrics all derive from these:

* **speedup** -- sequential useful work over total parallel virtual time
  (all speculation, testing, commit, restore and synchronization overheads
  included, as in the paper's "speedup numbers include all associated
  overheads");
* **parallelism ratio** ``PR = #instantiations / (#restarts +
  #instantiations)`` (Section 5.2), where each failed speculative stage
  counts as one restart;
* per-stage execution-time breakdowns (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.machine.timeline import Category, Timeline
from repro.util.blocks import Block


@dataclass(slots=True)
class StageResult:
    """Summary of one speculative parallelization attempt (one stage)."""

    index: int
    blocks: list[Block]
    failed: bool
    earliest_sink_pos: int | None
    committed_iterations: int
    remaining_after: int
    committed_work: float
    n_arcs: int
    committed_elements: int
    restored_elements: int
    redistributed_iterations: int
    span: float
    migration_distance: float = 0.0
    """Topology distance summed over migrated iterations (0 on flat/ccUMA)."""
    breakdown: dict[Category, float] = field(default_factory=dict)
    faulted_procs: list[int] = field(default_factory=list)
    """Processors whose blocks were lost to an injected fault this stage
    (fail-stop or detected write corruption); empty on clean stages."""
    degraded: bool = False
    """The stage was scheduled on fewer processors than the machine owns
    (an earlier permanent fail-stop shrank the pool)."""
    redispatched_procs: list[int] = field(default_factory=list)
    """Processors whose blocks the worker supervisor re-dispatched after
    their OS worker process died or hung this stage
    (:mod:`repro.core.supervise`).  Host-scheduling noise, not part of the
    deterministic record: excluded from event serialization, so disturbed
    and undisturbed traces stay bit-identical."""

    @property
    def attempted_iterations(self) -> int:
        return sum(len(b) for b in self.blocks)


@dataclass(slots=True)
class RunResult:
    """Outcome of one loop instantiation under one configuration."""

    loop_name: str
    strategy: str
    n_procs: int
    n_iterations: int
    stages: list[StageResult]
    timeline: Timeline
    sequential_work: float
    """Virtual time of the useful work alone = the sequential execution
    time of this instantiation (committed iterations only, final values)."""

    induction_finals: dict[str, int] = field(default_factory=dict)
    iteration_times: dict[int, float] = field(default_factory=dict)
    """Measured per-iteration times (work + marking + copy-in) of the final
    successful execution of each iteration -- the load balancer's input."""

    memory: object = None
    """The machine's final :class:`~repro.machine.memory.MemoryImage`."""

    exit_iteration: int | None = None
    """Iteration at which a premature exit was validated (``None`` = ran
    to completion)."""

    retries: int = 0
    """Stage re-executions forced by injected faults (a stage counts once
    when a fault, not a data dependence, set or advanced its failure
    point)."""

    faults_survived: int = 0
    """Injected faults the run absorbed.  A returned result implies every
    fired fault was recovered, so this equals the fired count; an
    unrecoverable fault raises :class:`~repro.errors.FaultError` instead."""

    fault_counts: dict[str, int] = field(default_factory=dict)
    """Survived faults by class (``fail-stop`` / ``corrupt-write`` /
    ``straggler`` / ``checkpoint``); empty for fault-free machines."""

    degraded_stages: int = 0
    """Stages executed on a shrunken processor pool after permanent
    fail-stop deaths."""

    dead_procs: list[int] = field(default_factory=list)
    """Processors permanently lost to fail-stop faults during the run."""

    metrics: dict = field(default_factory=dict)
    """Final metrics-registry snapshot (:mod:`repro.obs.metrics`) when the
    run collected metrics; empty otherwise.  Deterministic counts only."""

    kernels: str = "vector"
    """Hot-path kernels implementation the run executed under
    (:mod:`repro.kernels`); affects host time only, never results."""

    backend: str = "serial"
    """Execution backend the run finished on (``serial``/``fork``/``shm``/
    ``threads``) -- after any supervisor degradations; affects host time
    only, never results."""

    thread_mode: str | None = None
    """``"free-threaded"`` or ``"gil"`` when the run finished on the
    threads backend (:func:`repro.core.threads.thread_mode`), else
    ``None``.  Host-capability metadata; never part of results."""

    supervision: dict = field(default_factory=dict)
    """Flat ``supervise.*`` counters (:class:`~repro.core.supervise.
    SupervisionStats`) when the worker supervisor acted this run --
    respawns, re-dispatched blocks, kills, backend degradations; empty on
    undisturbed runs.  Host-dependent, deliberately outside ``metrics``."""

    certificate: object = None
    """:class:`~repro.model.certify.LoopCertificate` attached when the
    certification front-end examined this loop (``certify`` != ``off``
    via :func:`~repro.core.runner.parallelize`): the verdict that either
    selected a fast path (strategy ``certified-doall``/``certified-seq``)
    or merely annotated a SPECULATE run.  Never enters the deterministic
    event stream."""

    # -- derived metrics ---------------------------------------------------------

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def n_restarts(self) -> int:
        """Failed speculative attempts (stages that could not commit fully)."""
        return sum(1 for s in self.stages if s.failed)

    @property
    def total_time(self) -> float:
        return self.timeline.total_time()

    @property
    def overhead_time(self) -> float:
        return self.timeline.overhead_time()

    @property
    def speedup(self) -> float:
        total = self.total_time
        if total <= 0:
            return 1.0
        return self.sequential_work / total

    @property
    def parallelism_ratio(self) -> float:
        """Single-instantiation PR: ``1 / (1 + restarts)``."""
        return 1.0 / (1.0 + self.n_restarts)

    @property
    def wasted_work(self) -> float:
        """Useful-work time spent on iterations that later re-executed
        (total work charged across processors minus the committed work)."""
        return self.timeline.charged_category(Category.WORK) - self.sequential_work

    def stage_spans(self) -> list[float]:
        return [s.span for s in self.stages]

    def summary(self) -> dict[str, float | int | str]:
        """Flat record for benchmark tables."""
        record: dict[str, float | int | str] = {
            "loop": self.loop_name,
            "strategy": self.strategy,
            "p": self.n_procs,
            "stages": self.n_stages,
            "restarts": self.n_restarts,
            "PR": self.parallelism_ratio,
            "T_seq": self.sequential_work,
            "T_par": self.total_time,
            "speedup": self.speedup,
            "overhead": self.overhead_time,
            "kernels": self.kernels,
        }
        if self.backend != "serial":
            record["backend"] = self.backend
        if self.thread_mode is not None:
            record["thread_mode"] = self.thread_mode
        if self.certificate is not None:
            record["certificate"] = self.certificate.verdict
        if self.faults_survived or self.retries:
            record["faults"] = self.faults_survived
            record["fault_retries"] = self.retries
            record["degraded_stages"] = self.degraded_stages
        return record


@dataclass(slots=True)
class ProgramResult:
    """Aggregate over repeated instantiations of a loop (program lifetime)."""

    loop_name: str
    strategy: str
    n_procs: int
    runs: list[RunResult] = field(default_factory=list)

    def add(self, run: RunResult) -> None:
        self.runs.append(run)

    @property
    def n_instantiations(self) -> int:
        return len(self.runs)

    @property
    def n_restarts(self) -> int:
        return sum(run.n_restarts for run in self.runs)

    @property
    def parallelism_ratio(self) -> float:
        """The paper's PR over the life of the program (Section 5.2)."""
        inst = self.n_instantiations
        if inst == 0:
            return 1.0
        return inst / (self.n_restarts + inst)

    @property
    def total_time(self) -> float:
        return sum(run.total_time for run in self.runs)

    @property
    def sequential_work(self) -> float:
        return sum(run.sequential_work for run in self.runs)

    @property
    def speedup(self) -> float:
        total = self.total_time
        if total <= 0:
            return 1.0
        return self.sequential_work / total

    def summary(self) -> dict[str, float | int | str]:
        return {
            "loop": self.loop_name,
            "strategy": self.strategy,
            "p": self.n_procs,
            "instantiations": self.n_instantiations,
            "restarts": self.n_restarts,
            "PR": self.parallelism_ratio,
            "T_seq": self.sequential_work,
            "T_par": self.total_time,
            "speedup": self.speedup,
        }


def committed_work_of(blocks: Sequence[Block], iter_times: dict[int, float]) -> float:
    """Sum the measured work time of all iterations in ``blocks``."""
    return float(
        sum(iter_times[i] for b in blocks for i in b.iterations())
    )
