"""Certified fast paths: zero-speculation execution for certified loops.

When the static certifier (:mod:`repro.model.certify`) proves a loop
independent or provably sequential, the full R-LRPD machinery is pure
overhead.  The two strategies here run the same :class:`StageEngine`
stage loop -- same events, same virtual-time accounting for the work
actually done -- but strip out everything speculation-specific:

* :class:`CertifiedDoall` partitions the iteration space once and runs
  every block on a *plain* processor state (no private views, no shadow
  arrays) with ``eng.ckpt = None``.  Every load and store takes
  :class:`~repro.core.executor.SpeculativeContext`'s direct
  shared-memory path: zero MARK/COPY_IN/CHECKPOINT charges, WORK charged
  as usual.  The analysis phase reports no sinks without charging the
  dependence test, and the commit phase copies nothing out -- the
  writes already landed in committed memory, which is exactly what the
  DOALL certificate licenses.
* :class:`CertifiedSequential` runs the whole loop as one in-order block
  on a single processor, again on a plain state.  A provably sequential
  loop would restart once per iteration under speculation; executing it
  directly skips the doomed stages (and handles premature exits
  naturally, since execution is in loop order).

Neither class is registered in the strategy registry: they are
reachable only through a certificate
(:func:`repro.model.certify.fastpath_strategy`), never via
``--strategy``, because running them on an uncertified loop would
silently compute wrong answers.

Out-of-process backends see these stages as ``plain`` block tasks
(:class:`~repro.core.backend.BlockTask`): workers run on plain states
too, capturing written elements through a charge-free checkpoint so the
direct writes ship home through the same untested-delta protocol the
speculative path uses.
"""

from __future__ import annotations

from repro.config import RuntimeConfig
from repro.core.engine import StageEngine, Strategy
from repro.core.executor import make_plain_state
from repro.core.stage import committed_work
from repro.errors import ConfigurationError, SpeculationError
from repro.loopir.loop import SpeculativeLoop
from repro.util.blocks import Block, partition_even, partition_weighted


class _CertifiedBase(Strategy):
    """Shared plain-execution policy for both certified fast paths."""

    #: Backends run this strategy's blocks on plain states (direct
    #: shared-memory access, charge-free worker-side write capture).
    plain_tasks = True

    def __init__(self, certificate=None) -> None:
        self.certificate = certificate

    def validate(self, loop: SpeculativeLoop, config: RuntimeConfig) -> None:
        # These are certifier bugs if ever hit: certify_loop returns
        # SPECULATE for all of them before a fast path can be resolved.
        if loop.inductions:
            raise ConfigurationError(
                f"loop {loop.name!r} declares induction variables; the "
                "certified fast path cannot run speculative inductions"
            )
        if loop.reductions:
            raise ConfigurationError(
                f"loop {loop.name!r} declares reductions; the certified "
                "fast path has no partials/combine phase"
            )
        # Fault tolerance rests on checkpoint/restore, which the plain
        # fast path removes; the dispatcher never certifies such runs.
        if config.fault_plan is not None:
            raise ConfigurationError(
                "certified fast paths do not support fault injection "
                "(no checkpoint to restore from); use --certify=off"
            )
        if config.os_chaos is not None:
            raise ConfigurationError(
                "certified fast paths do not support OS chaos injection; "
                "use --certify=off"
            )

    def setup(self, eng: StageEngine) -> None:
        # Plain states: every access takes the direct shared-memory path.
        eng.states = {p: make_plain_state(p) for p in range(eng.n_procs)}
        # No checkpoint: stores charge nothing, restores are no-ops.  The
        # certificate guarantees no stage ever rolls back.
        eng.ckpt = None

    def run_label(self, eng: StageEngine) -> str:
        return self.name

    def before_block(self, eng: StageEngine, block: Block) -> None:
        # No private views to pre-initialize.
        pass

    def wants_preload(self, eng: StageEngine) -> bool:
        return False

    def analyze(self, eng, blocks):
        # The certificate *is* the dependence test; charge nothing.
        return None, 0

    def commit(self, eng, committing, failing):
        # Nothing to copy out: plain stores already landed in committed
        # memory.  Account the committed work and iteration times exactly
        # like the speculative commit does.
        stage_work = committed_work(eng.states, committing)
        for block in committing:
            times = eng.states[block.proc].iter_times
            for i in block.iterations():
                eng.final_iter_times[i] = times[i]
        return 0, stage_work

    def result_extras(self, eng: StageEngine) -> dict:
        return {}


class CertifiedDoall(_CertifiedBase):
    """Run a certified-DOALL loop as a plain parallel doall.

    One stage, one block per alive processor, no speculation machinery.
    ``exit_mode="reject"``: the certifier routes loops with observed
    premature exits to SPECULATE, so an exit here means the certificate
    was wrong (possible only for affine-model certificates under
    ``--certify=trust``) -- fail loudly rather than mis-commit.
    """

    name = "certified-doall"
    exit_mode = "reject"

    def schedule(self, eng: StageEngine) -> list[Block]:
        start, stop = eng.committed_upto, eng.n
        if eng.weights is None:
            blocks = partition_even(start, stop, eng.alive)
        else:
            blocks = partition_weighted(
                start, stop, eng.alive, eng.weights[start:stop]
            )
        nonempty = [b for b in blocks if len(b)]
        if not nonempty:
            raise SpeculationError(
                f"{eng.loop.name}: empty schedule with work left"
            )
        return nonempty


class CertifiedSequential(_CertifiedBase):
    """Run a certified-SEQUENTIAL loop in order on one processor.

    A single block covering the whole remaining range executes with
    reference semantics (plain state, in loop order), so premature exits
    are simply collected and committed -- execution never passed the
    exit iteration.
    """

    name = "certified-seq"
    exit_mode = "collect"

    def schedule(self, eng: StageEngine) -> list[Block]:
        if not eng.alive:
            raise SpeculationError(f"{eng.loop.name}: no processors alive")
        return [Block(eng.alive[0], eng.committed_upto, eng.n)]
