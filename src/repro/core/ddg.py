"""Data-dependence-graph extraction with the sliding-window R-LRPD test.

For loops whose dependence structure makes the plain R-LRPD schedule nearly
sequential (e.g. SPICE's sparse LU factorization, partially parallel with a
short critical path), Section 3 extracts the full iteration DDG instead:

* the shadow is organized as an N-level *mark list* (one level per
  iteration assigned to a processor);
* a *last reference table* maintains the last committed write (and read)
  of each memory address, detecting cross-window dependences;
* every discovered dependence is logged into the *inverted edge table*.

Extraction rides on the normal sliding-window execution: only committed
(provably correct) iterations contribute edges and last-reference entries;
failed blocks are re-executed and their edges re-discovered.  The result is
the exact DDG of the loop *for this input*, which the wavefront scheduler
(:mod:`repro.core.wavefront`) turns into an optimized schedule -- reusable
across instantiations as long as the access pattern (e.g. the circuit
topology) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.config import RuntimeConfig, Strategy
from repro.core.analysis import analyze_stage
from repro.core.commit import commit_states, reinit_states
from repro.core.engine import require_fault_support, require_serial_backend
from repro.core.executor import execute_block
from repro.core.results import RunResult, StageResult
from repro.core.stage import (
    charge_analysis,
    charge_checkpoint_begin,
    committed_work,
    make_speculative_machine,
    perform_restore,
)
from repro.core.window import default_window
from repro.errors import ConfigurationError, NoProgressError, SpeculationError
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.memory import MemoryImage
from repro.shadow.edges import DependenceEdge, EdgeKind, InvertedEdgeTable
from repro.shadow.lastref import LastReferenceTable
from repro.shadow.marklist import IterationMarks, MarkList
from repro.util.blocks import Block


@dataclass
class DDGResult:
    """Extracted dependence graph plus the run that produced it."""

    loop_name: str
    n_iterations: int
    edges: InvertedEdgeTable
    extraction: RunResult

    def graph(self) -> nx.DiGraph:
        return self.edges.to_graph(self.n_iterations)

    def flow_pairs(self) -> set[tuple[int, int]]:
        return self.edges.iteration_pairs([EdgeKind.FLOW])


def _log_iteration_edges(
    edges: InvertedEdgeTable,
    lastref: LastReferenceTable,
    iteration: int,
    marks_by_array: dict[str, IterationMarks],
) -> None:
    """Log edges ending at ``iteration`` and update the last-reference table.

    Reduction updates are treated conservatively as read-modify-writes for
    graph purposes (commuting them is a scheduling extension, not needed for
    correctness of the wavefront order).
    """
    for name, marks in marks_by_array.items():
        reads = marks.exposed_reads | marks.updates
        writes = marks.writes | marks.updates
        for index in reads:
            w = lastref.last_write(name, index)
            if w is not None and w < iteration:
                edges.log(DependenceEdge(w, iteration, EdgeKind.FLOW, name, index))
        for index in writes:
            for r in lastref.readers_since_write(name, index):
                if r < iteration:
                    edges.log(
                        DependenceEdge(r, iteration, EdgeKind.ANTI, name, index)
                    )
            w = lastref.last_write(name, index)
            if w is not None and w < iteration:
                edges.log(DependenceEdge(w, iteration, EdgeKind.OUTPUT, name, index))
    for name, marks in marks_by_array.items():
        for index in marks.exposed_reads | marks.updates:
            lastref.record_read(name, index, iteration)
        for index in marks.writes | marks.updates:
            lastref.record_write(name, index, iteration)


def extract_ddg(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> DDGResult:
    """Execute ``loop`` under the SW R-LRPD test while extracting its DDG."""
    config = config or RuntimeConfig.sw()
    require_fault_support(config, "DDG extraction")
    require_serial_backend(config, "DDG extraction")
    if config.strategy is not Strategy.SLIDING_WINDOW:
        raise ConfigurationError("DDG extraction uses the sliding-window strategy")
    if loop.inductions:
        raise ConfigurationError(
            "DDG extraction does not support speculative inductions"
        )

    machine, states, ckpt = make_speculative_machine(
        loop, n_procs, config, costs, memory
    )

    n = loop.n_iterations
    window = config.window_size or default_window(n_procs)
    b = max(1, window // n_procs)
    tested = loop.tested_names

    edges = InvertedEdgeTable()
    lastref = LastReferenceTable()
    committed_upto = 0
    stage_results: list[StageResult] = []
    sequential_work = 0.0
    final_iter_times: dict[int, float] = {}
    stage_idx = 0

    def block_at(j: int) -> Block:
        start = min(j * b, n)
        return Block(j % n_procs, start, min(start + b, n))

    while committed_upto < n:
        if stage_idx >= config.max_stages:
            raise SpeculationError(
                f"{loop.name}: exceeded max_stages={config.max_stages}"
            )
        j0 = committed_upto // b
        window_blocks: list[Block] = []
        marklists: dict[int, dict[str, MarkList]] = {}
        for j in range(j0, j0 + n_procs):
            blk = block_at(j)
            if len(blk) == 0:
                break
            window_blocks.append(blk)
        if not window_blocks:
            raise SpeculationError(f"{loop.name}: empty window with work left")

        record = machine.begin_stage()
        charge_checkpoint_begin(machine, ckpt)
        for block in window_blocks:
            ml = {name: MarkList(name, block.proc) for name in tested}
            marklists[block.proc] = ml
            ctx = execute_block(
                machine, loop, states[block.proc], block, ckpt, marklists=ml
            )
            if ctx.exit_iteration is not None:
                raise ConfigurationError(
                    f"{loop.name}: premature exits need the blocked runner"
                )
        machine.barrier()

        groups = [(blk.proc, states[blk.proc].shadows) for blk in window_blocks]
        analysis = analyze_stage(groups)
        charge_analysis(machine, analysis, [blk.proc for blk in window_blocks])

        f_pos = analysis.earliest_sink_pos
        committing = window_blocks if f_pos is None else window_blocks[:f_pos]
        failing = [] if f_pos is None else window_blocks[f_pos:]
        if not committing:
            raise NoProgressError(
                f"{loop.name}: DDG window stage {stage_idx} committed nothing"
            )

        committed_elements = commit_states(
            machine, loop, [states[blk.proc] for blk in committing]
        )
        stage_work = committed_work(states, committing)
        sequential_work += stage_work

        # Harvest edges from the committed (correct) iterations, in order.
        for block in committing:
            ml_dict = marklists[block.proc]
            for k, i in enumerate(block.iterations()):
                marks = {name: ml_dict[name].level(k) for name in tested}
                _log_iteration_edges(edges, lastref, i, marks)
            times = states[block.proc].iter_times
            for i in block.iterations():
                final_iter_times[i] = times[i]

        restored = perform_restore(machine, ckpt, [blk.proc for blk in failing])
        reinit_states(machine, [states[blk.proc] for blk in failing])
        for block in committing:
            states[block.proc].reset()

        committed_upto = committing[-1].stop
        stage_results.append(
            StageResult(
                index=stage_idx,
                blocks=list(window_blocks),
                failed=f_pos is not None,
                earliest_sink_pos=f_pos,
                committed_iterations=sum(len(blk) for blk in committing),
                remaining_after=n - committed_upto,
                committed_work=stage_work,
                n_arcs=len(analysis.arcs),
                committed_elements=committed_elements,
                restored_elements=restored,
                redistributed_iterations=0,
                span=record.span(),
                breakdown=record.breakdown(),
            )
        )
        stage_idx += 1

    extraction = RunResult(
        loop_name=loop.name,
        strategy=f"SW-DDG(w={window})",
        n_procs=n_procs,
        n_iterations=n,
        stages=stage_results,
        timeline=machine.timeline,
        sequential_work=sequential_work,
        iteration_times=final_iter_times,
        memory=machine.memory,
    )
    return DDGResult(
        loop_name=loop.name,
        n_iterations=n,
        edges=edges,
        extraction=extraction,
    )
