"""Execution backends: where a stage's speculative blocks actually run.

The paper's central property is that every speculative stage is an
embarrassingly parallel doall -- each block runs on privatized storage with
no cross-block communication until the analysis phase.  The backend layer
exploits that: the :class:`StageEngine` hands the stage's blocks to a
backend as :class:`BlockTask` descriptors and receives :class:`BlockOutcome`
objects back, without caring *where* the blocks ran.

Four backends are provided:

* ``serial`` (the default) executes blocks one after another in-process,
  exactly the pre-backend behavior.
* ``threads`` (:mod:`repro.core.threads`, registered lazily) runs a
  persistent pool of worker *threads* directly against the engine's own
  processor states and shared memory -- no fork, no memory diff-sync, no
  pipes, no pickling.  The hot loops are GIL-releasing
  :mod:`repro.kernels` calls (and truly concurrent on free-threaded
  CPython builds); only folded charges, metrics snapshots and untested
  captures travel through the per-worker queues, merged in block order.
* ``shm`` (:mod:`repro.core.shm`, registered lazily) runs forked workers
  over a zero-copy shared-memory data plane: the memory image and the
  dense private views/shadow bit planes live in shared segments, and the
  pipes carry only struct-packed task descriptors and outcome headers.
* ``fork`` dispatches the blocks to a persistent pool of forked worker
  processes.  Each worker runs :func:`~repro.core.executor.execute_block`
  against its own fresh :class:`~repro.core.executor.ProcessorState` and
  ships back a compact :class:`_BlockDelta` -- written private-view
  entries, packed shadow bit planes, reduction partials, per-iteration
  times, folded per-category timeline charges, untested-write sets and the
  fault/exit outcome.  The parent merges deltas **in block order**, so
  results, events and virtual-time accounting are bit-identical to serial
  execution (enforced by running the golden parity suite under both
  backends).

Bit-exactness rests on two invariants the engine's strategies uphold:

* every strategy schedules at most **one block per processor per stage**
  (blocked drivers by construction, the sliding window assigns its window
  blocks to distinct processors), so a processor's execution-phase charges
  all come from a single block and the worker's per-category sums replay
  to the same floats the serial in-order accumulation produces;
* untested arrays obey the statically-analyzable isolation contract (no
  cross-processor element sharing within a stage -- what ``--self-check``
  verifies), so replaying each block's untested writes in block order
  reproduces the serial interleaving.

Fault injection is handled by *hoisting*: the parent resolves each block's
straggler slowdown and fail-stop point before dispatch (workers carry no
injector), which matches serial query-time state because processors
marked dead are never scheduled again.

The fork pool uses the ``fork`` start method so workers inherit the loop
closure and cost model; only tasks, memory updates and deltas cross the
pipes.  Worker shared memory is kept in sync by broadcasting the contents
of arrays that changed since the last dispatch (commits, restores,
reinitializations all funnel through parent memory, so a diff against the
last synced snapshot catches every mutation without instrumentation).

Both out-of-process backends run every dispatch under a
:class:`~repro.core.supervise.WorkerSupervisor`: a SIGKILLed, OOM-killed
or wedged worker is detected (process sentinel / dispatch deadline),
reaped and replaced by a fresh fork, and its blocks are re-dispatched --
bit-identically, because deltas merge only after *all* replies arrive, so
the parent carries no trace of the killed attempt.  When the pool is
beyond repair the supervisor raises
:class:`~repro.core.supervise.PoolDegradation` and the engine falls back
down the shm -> fork -> serial chain.  The backend hooks the supervisor
drives are ``_spawn_worker`` / ``_send_share`` / ``_recv_share`` /
``_recover_shared_state`` / ``_halt_workers``, which is also exactly the
surface :class:`~repro.core.shm.ShmBackend` overrides to reuse this
module's ``run_blocks`` verbatim.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.core.executor import (
    execute_block,
    make_all_private_state,
    make_plain_state,
    make_processor_state,
)
from repro.core.supervise import WorkerSupervisor
from repro.errors import BackendError, ConfigurationError
from repro.obs.oplog import get_oplog
from repro.kernels import get_kernels
from repro.machine.checkpoint import CheckpointManager
from repro.machine.memory import MemoryImage, SharedArray
from repro.machine.timeline import Category
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.util.blocks import Block

# -- default-backend selection ---------------------------------------------------

DEFAULT_BACKEND = "serial"

_default_backend = DEFAULT_BACKEND


def get_default_backend() -> str:
    """Backend used when ``RuntimeConfig.backend`` is ``None``."""
    return _default_backend


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend (``use_backend`` scopes it)."""
    global _default_backend
    _ensure_registered()
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; known: {', '.join(backend_names())}"
        )
    _default_backend = name


@contextlib.contextmanager
def use_backend(name: str):
    """Scope the default backend: every run started inside the ``with``
    whose config leaves ``backend=None`` uses ``name``.  Lets existing
    entry points (and the golden parity suite) run under the fork backend
    without threading a parameter through every call."""
    previous = _default_backend
    set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


def resolve_backend_name(config) -> str:
    """The backend a config resolves to (explicit setting or the default)."""
    name = getattr(config, "backend", None)
    return name if name is not None else _default_backend


# -- task / outcome descriptors ---------------------------------------------------


@dataclass
class BlockTask:
    """One block of one stage, as handed to an execution backend."""

    stage: int
    pos: int
    block: Block
    inductions: dict[str, int] | None = None
    marklists: dict | None = None
    extras: dict = field(default_factory=dict)
    preload: bool = False
    all_private: bool = False
    """Run on a fully privatized state with no checkpoint or injector (the
    induction recipe's side-effect-free range collection)."""
    plain: bool = False
    """Certified fast path (:mod:`repro.core.fastpath`): run on a plain
    processor state with no views and no shadows, so every access takes
    the direct-shared-memory path -- no marking, no copy-in, no
    checkpoint charges.  Out-of-process workers still capture the
    written ``(indices, values)`` through a charge-free
    :class:`_CaptureCheckpoint` so direct writes ship back to the
    parent (and roll back under cancellation) exactly like untested
    writes."""
    log_untested: bool = False
    use_injector: bool = True
    slowdown: float = 1.0
    death: tuple[int, bool] | None = None
    collect_metrics: bool = False
    """Accumulate a metrics snapshot for this block (fork workers use a
    private registry, shipped back in the delta)."""
    collect_spans: bool = False
    """Measure per-block host/virtual timings for the span layer."""


@dataclass
class BlockOutcome:
    """What the engine needs to know after a block executed."""

    pos: int
    block: Block
    fault: str | None = None
    fault_permanent: bool = False
    exit_iteration: int | None = None
    inductions: dict[str, int] = field(default_factory=dict)
    host_start: float = 0.0
    """Run-relative host seconds at block start (``collect_spans`` only)."""
    host_dur: float = 0.0
    virt_dur: float = 0.0
    """This block's summed virtual-time charges (``collect_spans`` only)."""

    def induction_values(self) -> dict[str, int]:
        return dict(self.inductions)


# -- backends ---------------------------------------------------------------------


class ExecutionBackend:
    """Executes the blocks of one stage and merges results into the engine."""

    name = ""

    def __init__(self, eng) -> None:
        self.eng = eng

    def run_blocks(self, tasks: list[BlockTask]) -> list[BlockOutcome]:
        """Execute all tasks; return outcomes ordered by block position.

        Post-condition, regardless of backend: the engine's processor
        states, checkpoint manager, untested-access log, shared memory and
        timeline are exactly as if the blocks had run serially in-process.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker processes); idempotent."""

    def resource_info(self) -> dict:
        """Operational snapshot for the host resource sampler.

        Purely informational (never affects execution): ``worker_pids``
        are OS process ids the sampler should read ``/proc`` stats for,
        ``shm_bytes`` the bytes currently held in shared-memory
        segments, ``inflight`` the blocks dispatched but not yet
        collected, ``queue_depths`` any per-worker queue backlogs.
        Backends override what they know; the base backend runs
        everything in-process and holds nothing.
        """
        return {
            "worker_pids": [],
            "shm_bytes": 0,
            "inflight": 0,
            "queue_depths": [],
        }


class SerialBackend(ExecutionBackend):
    """In-process, one-block-after-another execution (the default)."""

    name = "serial"

    def run_blocks(self, tasks: list[BlockTask]) -> list[BlockOutcome]:
        eng = self.eng
        # Backend-level, not per-task: strategies build their own tasks
        # (pre-stage doalls) and must not need to know about span tracing.
        collect_spans = getattr(eng, "spans_enabled", False)
        outcomes = []
        for task in tasks:
            block = task.block
            if task.all_private:
                state = make_all_private_state(eng.machine, eng.loop, block.proc)
                ckpt = injector = untested_log = None
            else:
                eng.strategy.before_block(eng, block)
                state = eng.states[block.proc]
                ckpt = eng.ckpt
                injector = eng.injector if task.use_injector else None
                untested_log = eng.untested_log if task.log_untested else None
            if collect_spans:
                record = eng.machine.timeline.current
                virt_before = record.proc_time(block.proc)
                host_before = eng.host_now()
            ctx = execute_block(
                eng.machine, eng.loop, state, block, ckpt,
                inductions=task.inductions, marklists=task.marklists,
                injector=injector, stage=task.stage,
                untested_log=untested_log, **task.extras,
            )
            outcome = BlockOutcome(
                pos=task.pos, block=block, fault=ctx.fault,
                fault_permanent=ctx.fault_permanent,
                exit_iteration=ctx.exit_iteration,
                inductions=ctx.induction_values(),
            )
            if collect_spans:
                outcome.host_start = host_before
                outcome.host_dur = eng.host_now() - host_before
                outcome.virt_dur = record.proc_time(block.proc) - virt_before
            outcomes.append(outcome)
        return outcomes


# -- the fork backend -------------------------------------------------------------


@dataclass
class _BlockDelta:
    """Everything a worker ships back about one executed block."""

    pos: int
    charges: list[tuple[Category, float]]
    fault: str | None = None
    fault_permanent: bool = False
    exit_iteration: int | None = None
    inductions: dict[str, int] = field(default_factory=dict)
    views: dict[str, object] = field(default_factory=dict)
    shadows: dict[str, object] = field(default_factory=dict)
    partials: dict[str, dict[int, object]] = field(default_factory=dict)
    iter_times: dict[int, float] = field(default_factory=dict)
    iter_work: dict[int, float] = field(default_factory=dict)
    untested: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    untested_reads: list[tuple[str, int]] = field(default_factory=list)
    untested_writes: list[tuple[str, int]] = field(default_factory=list)
    marklists: dict | None = None
    metrics: dict | None = None
    """Snapshot of the worker's private registry (``collect_metrics``)."""
    host_start: float = 0.0
    """Absolute ``perf_counter`` at block start (``collect_spans``); the
    parent rebases it onto the run clock -- comparable across fork on
    POSIX, where ``perf_counter`` is the system-wide monotonic clock."""
    host_dur: float = 0.0
    virt_dur: float = 0.0


@dataclass
class _WorkerFailure:
    traceback: str


class _WorkerContext:
    """Per-worker immutable-ish context, inherited through fork."""

    def __init__(self, loop, costs, memory, ckpt_names, on_demand, reduction_names):
        self.loop = loop
        self.costs = costs
        self.memory = memory
        self.ckpt_names = ckpt_names
        self.on_demand = on_demand
        self.reduction_names = reduction_names


class _ChargeLog:
    """Duck-typed stand-in for :class:`~repro.machine.machine.Machine`
    inside a worker: same memory/costs surface, but charges append to a
    log instead of a timeline (the parent replays their per-category sums
    against the real timeline)."""

    __slots__ = ("memory", "costs", "charges", "metrics")

    def __init__(self, memory, costs) -> None:
        self.memory = memory
        self.costs = costs
        self.charges: list[tuple[Category, float]] = []
        self.metrics = NULL_REGISTRY

    def charge(self, proc: int, category: Category, amount: float) -> None:
        if amount:
            self.charges.append((category, amount))


def check_unique_procs(name: str, tasks: list[BlockTask]) -> None:
    """Enforce the one-block-per-processor-per-stage invariant every
    parallel backend's bit-exactness argument rests on (see the module
    docstring)."""
    procs = [task.block.proc for task in tasks]
    if len(set(procs)) != len(procs):
        raise BackendError(
            f"{name} backend needs at most one block per processor "
            f"per stage, got procs {procs}"
        )


def hoist_injection(eng, tasks: list[BlockTask]) -> None:
    """Resolve straggler/fail-stop faults parent-side, in block order.

    Matches serial query-time state exactly: the injector's dead set
    only grows with processors the engine removed from the alive pool,
    and those are never scheduled again, so a pre-dispatch query sees
    the same state an execution-time query would.
    """
    injector = eng.injector
    if injector is None:
        return
    for task in tasks:
        if not task.use_injector:
            continue
        task.slowdown = injector.slowdown(task.stage, task.block.proc)
        task.death = injector.fail_stop_point(
            task.stage, task.block.proc, len(task.block)
        )


class _CaptureCheckpoint(CheckpointManager):
    """Checkpoint that records old values but charges nothing.

    Certified plain tasks run with ``eng.ckpt = None``, so the parent-side
    charge profile has zero CHECKPOINT entries
    (:meth:`~repro.core.executor.SpeculativeContext.store` only charges
    when ``note_write`` reports a saved element).  Out-of-process workers
    still need the *bookkeeping* half of a checkpoint -- which elements
    this block wrote (to ship them home) and their old values (to roll the
    block back under cancellation or local restore).  Returning 0 from the
    ``note_write`` hooks keeps the capture while suppressing the charge.
    """

    def note_write(self, proc: int, name: str, index: int) -> int:
        super().note_write(proc, name, index)
        return 0

    def note_write_many(self, proc: int, name: str, indices) -> int:
        super().note_write_many(proc, name, indices)
        return 0


def make_capture_checkpoint(memory: MemoryImage) -> _CaptureCheckpoint:
    """Charge-free capture checkpoint over *every* array of ``memory``
    (plain tasks write shared memory directly, so any array may need
    rollback/shipping, not just the untested set)."""
    ckpt = _CaptureCheckpoint(memory, list(memory.names()), True)
    ckpt.begin_stage()
    return ckpt


class _AccessRecorder:
    """Worker-side stand-in for the self-check untested-access log."""

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: set[tuple[str, int]] = set()
        self.writes: set[tuple[str, int]] = set()

    def note_read(self, proc: int, name: str, index: int) -> None:
        self.reads.add((name, index))

    def note_write(self, proc: int, name: str, index: int) -> None:
        self.writes.add((name, index))


def _run_worker_task(wctx: _WorkerContext, task: BlockTask) -> _BlockDelta:
    log = _ChargeLog(wctx.memory, wctx.costs)
    if task.collect_metrics:
        log.metrics = MetricsRegistry()
    block = task.block
    recorder = None
    ckpt = None
    if task.all_private:
        state = make_all_private_state(log, wctx.loop, block.proc)
    elif task.plain:
        state = make_plain_state(block.proc)
        ckpt = make_capture_checkpoint(wctx.memory)
        if task.log_untested:
            recorder = _AccessRecorder()
    else:
        state = make_processor_state(log, wctx.loop, block.proc)
        if wctx.ckpt_names:
            ckpt = CheckpointManager(wctx.memory, wctx.ckpt_names, wctx.on_demand)
            ckpt.begin_stage()
        if task.log_untested:
            recorder = _AccessRecorder()
        if task.preload:
            state.preload(log, skip=wctx.reduction_names)
    # Span window matches the serial backend's: execute_block only, after
    # any preload, so host/virtual block durations are comparable.
    charges_before = len(log.charges)
    host_before = time.perf_counter() if task.collect_spans else 0.0
    ctx = execute_block(
        log, wctx.loop, state, block, ckpt,
        inductions=task.inductions, marklists=task.marklists,
        stage=task.stage, untested_log=recorder,
        slowdown=task.slowdown, death=task.death,
    )
    charges: dict[Category, float] = {}
    for category, amount in log.charges:
        charges[category] = charges.get(category, 0.0) + amount
    delta = _BlockDelta(
        pos=task.pos,
        charges=list(charges.items()),
        fault=ctx.fault,
        fault_permanent=ctx.fault_permanent,
        exit_iteration=ctx.exit_iteration,
        inductions=ctx.induction_values(),
    )
    if task.collect_metrics:
        delta.metrics = log.metrics.snapshot()
    if task.collect_spans:
        delta.host_start = host_before
        delta.host_dur = time.perf_counter() - host_before
        delta.virt_dur = sum(
            amount for _, amount in log.charges[charges_before:]
        )
    if task.all_private:
        return delta
    delta.views = {
        name: view.export_written()
        for name, view in state.views.items()
        if view.n_written()
    }
    delta.shadows = {
        name: shadow.export_marks()
        for name, shadow in state.shadows.items()
        if not shadow.is_clear()
    }
    delta.partials = {name: dict(p) for name, p in state.partials.items() if p}
    delta.iter_times = dict(state.iter_times)
    delta.iter_work = dict(state.iter_work)
    if ckpt is not None:
        for name, indices in ckpt.modified_by([block.proc]).items():
            if indices:
                idx = np.asarray(indices, dtype=np.int64)
                delta.untested[name] = (idx, get_kernels().gather(wctx.memory[name].data, idx))
        # Undo this block's untested writes locally: the worker's memory
        # must stay equal to the last parent broadcast, else rolled-back
        # stages would leave stale values behind the parent's sync diff.
        ckpt.restore_failed([block.proc])
    if recorder is not None:
        delta.untested_reads = sorted(recorder.reads)
        delta.untested_writes = sorted(recorder.writes)
    if task.marklists is not None:
        delta.marklists = task.marklists
    return delta


def _worker_main(conn, wctx: _WorkerContext) -> None:  # pragma: no cover - child
    try:
        while True:
            message = conn.recv()
            if message is None:
                return
            payload, tasks = message
            if payload:
                for name, update in pickle.loads(payload).items():
                    data = wctx.memory[name].data
                    if isinstance(update, tuple):
                        indices, values = update
                        data[indices] = values
                    else:
                        data[:] = update
            conn.send([_run_worker_task(wctx, task) for task in tasks])
    except (EOFError, KeyboardInterrupt):
        return
    except BaseException:
        try:
            conn.send(_WorkerFailure(traceback.format_exc()))
        except Exception:
            pass


class ForkBackend(ExecutionBackend):
    """Dispatch a stage's blocks to a persistent forked worker pool."""

    name = "fork"

    #: Worker entry point (overridden by the shm backend).
    _worker_target = staticmethod(_worker_main)

    def __init__(self, eng) -> None:
        super().__init__(eng)
        self._workers: list | None = None
        self._last_sync: dict[str, np.ndarray] = {}
        self._wctx = None
        self._mp_ctx = None
        self._updates: dict = {}
        self._updates_bytes: bytes = b""
        self._supervisor: WorkerSupervisor | None = None

    def _make_wctx(self):
        """Build the context workers inherit through fork (hook)."""
        eng = self.eng
        memory = eng.machine.memory
        self._last_sync = {
            name: memory[name].data.copy() for name in memory.names()
        }
        return _WorkerContext(
            loop=eng.loop,
            costs=eng.machine.costs,
            memory=MemoryImage(
                SharedArray(name, memory[name].data) for name in memory.names()
            ),
            ckpt_names=eng.ckpt.names if eng.ckpt is not None else [],
            on_demand=eng.config.on_demand_checkpoint,
            reduction_names=eng.reduction_names,
        )

    def _ensure_workers(self) -> None:
        if self._workers is not None:
            return
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise ConfigurationError(
                f"the {self.name} execution backend needs the 'fork' start "
                "method (POSIX only); use backend='serial' on this platform"
            )
        eng = self.eng
        n_workers = eng.config.backend_workers or min(
            eng.n_procs, os.cpu_count() or 1
        )
        n_workers = max(1, min(n_workers, eng.n_procs))
        self._wctx = self._make_wctx()
        self._mp_ctx = mp.get_context("fork")
        workers = []
        try:
            for _ in range(n_workers):
                workers.append(self._spawn_worker())
        except BaseException:
            for process, conn in workers:
                conn.close()
                process.terminate()
            raise
        self._workers = workers
        get_oplog().log(
            "backend", "pool-started", backend=self.name,
            workers=len(workers),
            pids=[process.pid for process, _ in workers],
        )

    def _spawn_worker(self):
        """Fork one worker from the saved context.

        Initial pool fill and supervised respawn share this path.  A
        respawn forks from the parent's *current* address space; the
        inherited ``wctx`` arrays are pool-build-time copies, so the
        supervisor's re-dispatch uses the full-sync ``fresh`` send to
        bring the replacement up to the dispatch-time broadcast state.
        """
        parent_conn, child_conn = self._mp_ctx.Pipe()
        process = self._mp_ctx.Process(
            target=self._worker_target, args=(child_conn, self._wctx),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    # -- supervision hooks -------------------------------------------------------

    def _begin_dispatch(self, tasks: list[BlockTask]) -> None:
        """Per-dispatch setup before shares are sent (hook).

        The memory-update broadcast is pickled **once** here and the same
        frame reused for every worker's send: re-serializing identical
        array payloads per share was a measurable slice of fork dispatch
        (see docs/cost-model.md on the spice15-sparse regression)."""
        self._updates = self._memory_updates()
        self._updates_bytes = (
            pickle.dumps(self._updates, protocol=pickle.HIGHEST_PROTOCOL)
            if self._updates else b""
        )

    def _send_share(self, k: int, share: list[BlockTask], fresh: bool) -> None:
        """Send worker ``k`` its share.  ``fresh`` marks a respawned
        worker, which needs the full memory image instead of the diff."""
        _, conn = self._workers[k]
        if fresh:
            memory = self.eng.machine.memory
            payload = pickle.dumps(
                {name: memory[name].data.copy() for name in memory.names()},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        else:
            payload = self._updates_bytes
        conn.send((payload, share))

    def _recv_share(self, k: int, share: list[BlockTask]):
        """Receive worker ``k``'s reply; a worker-raised exception becomes
        a :class:`BackendError` carrying the worker's full context."""
        _, conn = self._workers[k]
        reply = conn.recv()
        if isinstance(reply, _WorkerFailure):
            raise BackendError(
                f"{self._share_context(k, share)} raised:\n{reply.traceback}",
                loop=self.eng.loop.name,
            )
        return reply

    def _share_context(self, k: int, share: list[BlockTask]) -> str:
        """Identify one worker and its in-flight work, for error messages."""
        process, _ = self._workers[k]
        if share:
            where = (
                f"stage {share[0].stage} blocks {[t.pos for t in share]} "
                f"(procs {[t.block.proc for t in share]})"
            )
        else:
            where = "an empty share"
        return f"{self.name} backend worker {k} (pid {process.pid}) executing {where}"

    def _recover_shared_state(self, procs: list[int]) -> None:
        """Roll state a lost worker may have dirtied back to its
        dispatch-time contents (hook).  Fork workers write only their own
        copy-on-write address space, so there is nothing to undo."""

    def _halt_workers(self) -> None:
        """Kill the whole pool immediately (degradation path): live
        workers may still be executing and must stop before shared state
        is rolled back and the pool abandoned."""
        if self._workers is None:
            return
        workers, self._workers = self._workers, None
        get_oplog().log(
            "backend", "pool-halted", severity="warn", backend=self.name,
            workers=len(workers),
        )
        for process, _ in workers:
            if process.is_alive():
                process.kill()
        for process, conn in workers:
            process.join(timeout=5.0)
            try:
                conn.close()
            except OSError:  # pragma: no cover - already broken
                pass

    #: Ship a sparse ``(indices, values)`` diff instead of the whole array
    #: when at most this fraction of its elements changed since the last
    #: broadcast.  Sparse-commit workloads (the spice LU loops) touch a
    #: few hundred elements of multi-thousand-element arrays per stage;
    #: full-array pickling made fork dispatch cost more than the whole
    #: serial stage (the 0.38x spice15-sparse regression).
    _SPARSE_SYNC_FRACTION = 0.25

    def _memory_updates(self) -> dict:
        """Per-array changes since the last broadcast (commit/restore/init):
        either a full copy or a sparse ``(indices, values)`` pair the
        worker scatters into its image.

        Elementwise ``!=`` treats NaN as changed, so NaN elements re-ship
        every stage -- wasteful but correct (and now per-element, not
        per-array).
        """
        memory = self.eng.machine.memory
        updates: dict = {}
        for name in memory.names():
            data = memory[name].data
            last = self._last_sync.get(name)
            if last is None or last.shape != data.shape or data.ndim != 1:
                if last is None or not np.array_equal(last, data):
                    updates[name] = data.copy()
                    self._last_sync[name] = updates[name]
                continue
            changed = last != data
            n_changed = int(np.count_nonzero(changed))
            if not n_changed:
                continue
            if n_changed > self._SPARSE_SYNC_FRACTION * data.size:
                updates[name] = data.copy()
                self._last_sync[name] = updates[name]
            else:
                indices = np.flatnonzero(changed)
                values = data[indices]
                updates[name] = (indices, values)
                last[indices] = values
        return updates

    def run_blocks(self, tasks: list[BlockTask]) -> list[BlockOutcome]:
        eng = self.eng
        if not tasks:
            return []
        for task in tasks:
            if task.extras:
                raise ConfigurationError(
                    f"strategy {eng.strategy.name!r} passes execute_block "
                    f"kwargs {sorted(task.extras)} the {self.name} backend "
                    "cannot ship to workers; use backend='serial'"
                )
        check_unique_procs(self.name, tasks)
        self._ensure_workers()
        hoist_injection(eng, tasks)
        for task in tasks:
            task.collect_metrics = getattr(eng, "metrics_enabled", False)
            task.collect_spans = getattr(eng, "spans_enabled", False)
        self._begin_dispatch(tasks)
        # Every worker gets a share, even an empty one: the dispatch also
        # carries the memory-update broadcast, which must reach the whole
        # pool because the diff baseline (_last_sync) has advanced.
        shares: list[list[BlockTask]] = [[] for _ in self._workers]
        for k, task in enumerate(tasks):
            shares[k % len(shares)].append(task)
        if self._supervisor is None:
            self._supervisor = WorkerSupervisor(self)
        replies = self._supervisor.run_shares(shares)
        deltas: dict = {}
        for reply in replies:
            for delta in reply:
                deltas[delta.pos] = delta
        return [self._merge(task, deltas[task.pos]) for task in tasks]

    def _merge(self, task: BlockTask, delta: _BlockDelta) -> BlockOutcome:
        """Fold one block's delta into the engine, in block-position order."""
        eng = self.eng
        machine = eng.machine
        block = task.block
        proc = block.proc
        for category, amount in delta.charges:
            machine.charge(proc, category, amount)
        if delta.metrics is not None:
            # Block-order folding (this method runs in task order): merged
            # totals equal the serial backend's exactly.
            machine.metrics.merge(delta.metrics)
        outcome = BlockOutcome(
            pos=task.pos, block=block, fault=delta.fault,
            fault_permanent=delta.fault_permanent,
            exit_iteration=delta.exit_iteration,
            inductions=delta.inductions,
        )
        if task.collect_spans:
            # Worker clocks are absolute perf_counter readings; rebase onto
            # the engine's run-relative host clock.
            outcome.host_start = eng.rebase_host(delta.host_start)
            outcome.host_dur = delta.host_dur
            outcome.virt_dur = delta.virt_dur
        if task.all_private:
            return outcome
        state = eng.states[proc]
        for name, payload in delta.views.items():
            state.views[name].absorb_written(payload)
        for name, payload in delta.shadows.items():
            state.shadows[name].absorb_marks(payload)
        for name, partial in delta.partials.items():
            state.partials.setdefault(name, {}).update(partial)
        state.iter_times.update(delta.iter_times)
        state.iter_work.update(delta.iter_work)
        state.executed.append(block)
        for name, (indices, values) in delta.untested.items():
            if eng.ckpt is not None:
                eng.ckpt.note_write_many(proc, name, indices)
            get_kernels().scatter(machine.memory[name].data, indices, values)
        if eng.untested_log is not None:
            for name, index in delta.untested_reads:
                eng.untested_log.note_read(proc, name, index)
            for name, index in delta.untested_writes:
                eng.untested_log.note_write(proc, name, index)
        if task.marklists is not None:
            eng.strategy.install_marklists(eng, task.pos, block, delta.marklists)
        return outcome

    def resource_info(self) -> dict:
        """Worker pids plus in-flight share sizes for the sampler.

        Called from the sampler thread while the supervisor may be
        mid-dispatch, so everything is read through defensive copies.
        """
        info = super().resource_info()
        workers = self._workers or []
        try:
            info["worker_pids"] = [
                process.pid for process, _ in list(workers)
                if process.pid is not None
            ]
        except (TypeError, ValueError):  # pragma: no cover - torn read
            pass
        supervisor = self._supervisor
        if supervisor is not None:
            try:
                shares = list(supervisor._shares)
                info["inflight"] = sum(
                    len(shares[k]) for k in list(supervisor._sent)
                    if 0 <= k < len(shares)
                )
            except (TypeError, ValueError):  # pragma: no cover - torn read
                pass
        return info

    def close(self) -> None:
        if self._workers is None:
            return
        workers, self._workers = self._workers, None
        get_oplog().log(
            "backend", "pool-closed", backend=self.name,
            workers=len(workers),
        )
        _shutdown_pool(workers, lambda conn: conn.send(None))
        self._wctx = None
        self._supervisor = None
        self._updates = {}


def _shutdown_pool(workers: list, farewell) -> None:
    """Politely stop a worker pool, then escalate until it is gone:
    farewell message -> join -> ``terminate()`` (SIGTERM) -> join ->
    ``kill()`` (SIGKILL) -> reap.  A worker wedged in a signal handler or
    stopped by SIGSTOP ignores SIGTERM but cannot ignore SIGKILL, so no
    zombie survives close and no worker keeps ``/dev/shm`` segments
    mapped past the arena's unlink."""
    for _, conn in workers:
        try:
            farewell(conn)
        except (BrokenPipeError, OSError):
            pass
    for process, conn in workers:
        process.join(timeout=2.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=1.0)
        try:
            conn.close()
        except OSError:  # pragma: no cover - already broken
            pass


# -- registry ---------------------------------------------------------------------

BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ForkBackend.name: ForkBackend,
}

#: Backend modules registered lazily on first lookup (they import this
#: module, so eager registration here would be a cycle).
_LAZY_BACKEND_MODULES = ("repro.core.shm", "repro.core.threads")
_lazy_loaded = False


def _ensure_registered() -> None:
    global _lazy_loaded
    if _lazy_loaded:
        return
    _lazy_loaded = True
    import importlib

    for module in _LAZY_BACKEND_MODULES:
        importlib.import_module(module)


def backend_names() -> list[str]:
    _ensure_registered()
    return sorted(BACKENDS)


def make_backend(eng) -> ExecutionBackend:
    """Instantiate the backend an engine's config resolves to."""
    _ensure_registered()
    name = resolve_backend_name(eng.config)
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; known: "
            f"{', '.join(backend_names())}"
        ) from None
    return cls(eng)
