"""The LRPD / R-LRPD runtime itself.

Entry points:

* :func:`repro.core.runner.parallelize` -- run one loop instantiation under a
  :class:`~repro.config.RuntimeConfig` on a virtual machine, returning a
  :class:`~repro.core.results.RunResult`.
* :class:`repro.core.engine.StageEngine` -- the speculate/analyze/commit
  lifecycle itself, parameterized by a registered strategy
  (:func:`~repro.core.engine.resolve_strategy`); every runner above is a
  thin wrapper over it.
* :func:`repro.core.runner.run_program` -- run a sequence of instantiations
  (a loop called repeatedly over a program's life) with feedback-guided load
  balancing and aggregated parallelism-ratio accounting.
* :func:`repro.core.ddg.extract_ddg` -- sliding-window DDG extraction.
* :func:`repro.core.wavefront.wavefront_schedule` /
  :func:`repro.core.wavefront.execute_wavefront` -- optimal scheduling from
  an extracted DDG.
"""

from repro.core.results import RunResult, StageResult, ProgramResult
from repro.core.backend import (
    backend_names,
    get_default_backend,
    set_default_backend,
    use_backend,
)
from repro.core.engine import (
    StageEngine,
    register_strategy,
    require_fault_support,
    require_serial_backend,
    resolve_strategy,
    strategy_for_config,
    strategy_names,
)
from repro.core.engine import Strategy as EngineStrategy
from repro.core.runner import parallelize, run_program, run_program_predictive
from repro.core.lrpd import run_doall_lrpd
from repro.core.rlrpd import run_blocked
from repro.core.iterwise import run_blocked_iterwise
from repro.core.induction_runner import run_induction
from repro.core.window import run_sliding_window
from repro.core.ddg import extract_ddg, DDGResult
from repro.core.wavefront import WavefrontSchedule, wavefront_schedule, execute_wavefront
from repro.core.listsched import ListSchedule, execute_list_schedule, list_schedule
from repro.core.listtraversal import (
    LinkedListLoop,
    TraversalRunResult,
    run_list_traversal,
)
from repro.core.verify import Certificate, StrategyVerdict, certify

__all__ = [
    "RunResult",
    "StageResult",
    "ProgramResult",
    "StageEngine",
    "EngineStrategy",
    "register_strategy",
    "resolve_strategy",
    "strategy_for_config",
    "strategy_names",
    "require_fault_support",
    "require_serial_backend",
    "backend_names",
    "get_default_backend",
    "set_default_backend",
    "use_backend",
    "run_induction",
    "parallelize",
    "run_program",
    "run_program_predictive",
    "run_doall_lrpd",
    "run_blocked",
    "run_blocked_iterwise",
    "run_sliding_window",
    "extract_ddg",
    "DDGResult",
    "ListSchedule",
    "list_schedule",
    "execute_list_schedule",
    "LinkedListLoop",
    "TraversalRunResult",
    "run_list_traversal",
    "certify",
    "Certificate",
    "StrategyVerdict",
    "WavefrontSchedule",
    "wavefront_schedule",
    "execute_wavefront",
]
