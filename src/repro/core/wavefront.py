"""Wavefront scheduling from an extracted DDG.

Given the iteration dependence graph, iterations are grouped into
*wavefronts*: level ``k`` holds every iteration whose longest dependence
chain from any source has length ``k``.  All iterations in one wavefront are
mutually independent and execute as a doall; wavefronts execute in order
with a barrier between them.  The parallel time is bounded below by the
critical path (number of wavefronts) -- for SPICE's ``adder.128`` deck the
paper reports 14337 iterations with a critical path of 334.

The schedule depends only on the access pattern, so it is computed once
(amortizing the extraction run) and reused across loop instantiations,
exactly as the paper reuses the wavefront schedule "throughout the
remainder of the program execution".
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.results import RunResult, StageResult
from repro.errors import ScheduleError
from repro.loopir.context import SequentialContext
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage
from repro.machine.timeline import Category
from repro.util.blocks import Block


@dataclass(frozen=True)
class WavefrontSchedule:
    """Topological levels of the iteration DDG."""

    n_iterations: int
    levels: tuple[tuple[int, ...], ...]

    @property
    def critical_path(self) -> int:
        return len(self.levels)

    @property
    def average_parallelism(self) -> float:
        if not self.levels:
            return 0.0
        return self.n_iterations / len(self.levels)

    def max_width(self) -> int:
        return max((len(level) for level in self.levels), default=0)

    def validate(self, graph: nx.DiGraph) -> None:
        """Check every edge crosses levels forward and coverage is exact."""
        level_of: dict[int, int] = {}
        for k, level in enumerate(self.levels):
            for i in level:
                if i in level_of:
                    raise ScheduleError(f"iteration {i} appears in two wavefronts")
                level_of[i] = k
        if len(level_of) != self.n_iterations:
            raise ScheduleError(
                f"schedule covers {len(level_of)} of {self.n_iterations} iterations"
            )
        for src, dst in graph.edges:
            if level_of[src] >= level_of[dst]:
                raise ScheduleError(
                    f"edge {src}->{dst} not respected by wavefront levels"
                )


def wavefront_schedule(graph: nx.DiGraph, n_iterations: int) -> WavefrontSchedule:
    """Longest-path layering of the DDG.

    Iteration order is a topological order (all dependence edges point to
    later iterations), so a single forward pass computes each node's depth.
    """
    depth = [0] * n_iterations
    for src, dst in graph.edges:
        if not (0 <= src < n_iterations and 0 <= dst < n_iterations):
            raise ScheduleError(f"edge {src}->{dst} outside iteration space")
        if src >= dst:
            raise ScheduleError(f"non-forward edge {src}->{dst}; DDG must be a DAG")
    for src in range(n_iterations):
        d = depth[src]
        if graph.has_node(src):
            for dst in graph.successors(src):
                if depth[dst] < d + 1:
                    depth[dst] = d + 1
    n_levels = max(depth, default=-1) + 1
    buckets: list[list[int]] = [[] for _ in range(n_levels)]
    for i in range(n_iterations):
        buckets[depth[i]].append(i)
    return WavefrontSchedule(
        n_iterations=n_iterations,
        levels=tuple(tuple(level) for level in buckets),
    )


def execute_wavefront(
    loop: SpeculativeLoop,
    schedule: WavefrontSchedule,
    n_procs: int,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """Execute the loop level by level under a precomputed wavefront schedule.

    Iterations within a level are provably independent, so they run with
    direct shared access (no privatization, no marking, no test overhead --
    the payoff of having extracted the DDG once).  Each level is one doall:
    its span is the maximum per-processor work plus one barrier.
    """
    if schedule.n_iterations != loop.n_iterations:
        raise ScheduleError(
            f"schedule is for {schedule.n_iterations} iterations, loop has "
            f"{loop.n_iterations}"
        )
    machine = Machine(n_procs, costs=costs, memory=memory or loop.materialize())
    ctx = SequentialContext(
        machine.memory,
        reductions=loop.reductions,
        inductions=loop.initial_inductions(),
    )
    omega = machine.costs.omega
    stage_results: list[StageResult] = []
    sequential_work = 0.0
    iter_times: dict[int, float] = {}

    for k, level in enumerate(schedule.levels):
        record = machine.begin_stage()
        # Round-robin the level's iterations over processors; execute in
        # increasing iteration order (deterministic, dependence-safe).
        proc_time = [0.0] * n_procs
        for slot, i in enumerate(sorted(level)):
            proc = slot % n_procs
            ctx.iteration = i
            before = ctx.extra_work
            loop.body(ctx, i)
            if ctx.exited:
                raise ScheduleError(
                    f"{loop.name}: premature exits need the blocked runner"
                )
            t = (loop.work_of(i) + (ctx.extra_work - before)) * omega
            proc_time[proc] += t
            iter_times[i] = t
            sequential_work += t
        for proc, t in enumerate(proc_time):
            if t:
                machine.charge(proc, Category.WORK, t)
        machine.barrier()
        stage_results.append(
            StageResult(
                index=k,
                blocks=[Block(0, min(level), max(level) + 1)] if level else [],
                failed=False,
                earliest_sink_pos=None,
                committed_iterations=len(level),
                remaining_after=schedule.n_iterations
                - sum(len(lv) for lv in schedule.levels[: k + 1]),
                committed_work=sum(iter_times[i] for i in level),
                n_arcs=0,
                committed_elements=0,
                restored_elements=0,
                redistributed_iterations=0,
                span=record.span(),
                breakdown=record.breakdown(),
            )
        )

    return RunResult(
        loop_name=loop.name,
        strategy=f"wavefront(cp={schedule.critical_path})",
        n_procs=n_procs,
        n_iterations=loop.n_iterations,
        stages=stage_results,
        timeline=machine.timeline,
        sequential_work=sequential_work,
        iteration_times=iter_times,
        induction_finals=ctx.induction_values(),
        memory=machine.memory,
    )
