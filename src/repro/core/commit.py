"""The commit phase: private -> shared last-value copy-out.

Committing processors copy the elements they wrote to shared memory.  With
block scheduling, a later committing block's value supersedes an earlier
one's (output dependences resolve to the *last* written value), so commits
proceed in increasing block order.  Reduction partials are folded into the
shared value with the declared operator; commutativity makes the fold order
across processors irrelevant.

Committing also satisfies flow dependences for the next stage: re-executed
blocks will on-demand copy-in exactly the data produced here (paper,
Section 2: "we will read-in data produced in the previous stage").
"""

from __future__ import annotations

from typing import Sequence

from repro.core.executor import ProcessorState
from repro.kernels import get_kernels
from repro.loopir.loop import SpeculativeLoop
from repro.machine.machine import Machine
from repro.machine.timeline import Category


def commit_states(
    machine: Machine,
    loop: SpeculativeLoop,
    states: Sequence[ProcessorState],
) -> int:
    """Commit the given processor states in the given (increasing block)
    order.  Charges commit time to each committing processor -- the commit
    is fully parallel across processors (Section 4) -- and returns the
    total element count copied out."""
    total = 0
    total_bytes = 0
    cost = machine.costs.commit_per_elem
    for state in states:
        n_elems = 0
        for name, view in state.views.items():
            if name in loop.reductions:
                continue
            indices, values = view.written_arrays()
            if len(indices):
                get_kernels().scatter(machine.memory[name].data, indices, values)
                n_elems += len(indices)
                total_bytes += len(indices) * machine.memory[name].data.itemsize
        for name, partial in state.partials.items():
            op = loop.reductions[name]
            data = machine.memory[name].data
            for index, part in partial.items():
                data[index] = op.combine(data[index], part)
                n_elems += 1
            total_bytes += len(partial) * data.itemsize
        if n_elems:
            machine.charge(state.proc, Category.COMMIT, cost * n_elems)
        total += n_elems
    metrics = machine.metrics
    if metrics.enabled and total:
        metrics.counter("commit.elements").inc(total)
        metrics.counter("commit.bytes").inc(total_bytes)
    return total


def reinit_states(
    machine: Machine,
    states: Sequence[ProcessorState],
) -> None:
    """Re-initialize shadows and private data of re-executing processors.

    Charged per processor, proportional to the marks being cleared (the
    paper's shadow re-initialization step).
    """
    cost = machine.costs.reinit_per_elem
    for state in states:
        refs = state.distinct_refs()
        if refs:
            machine.charge(state.proc, Category.REINIT, cost * refs)
        state.reset()
