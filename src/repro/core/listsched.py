"""Critical-path list scheduling from an extracted DDG.

The paper extracts the DDG so it can generate an *'optimal' schedule*
(Section 3).  Wavefront scheduling is the simple instance -- one global
barrier per topological level -- but levels can be ragged: a level with 3
iterations stalls all ``p`` processors until the barrier.  Classic list
scheduling removes the barriers: iterations become ready the moment their
predecessors finish, and are dispatched to the first free processor in
descending *bottom-level* priority (longest dependence chain to any exit),
the standard critical-path heuristic.

Both schedulers consume the same DDG and produce the same final state; the
difference is pure wall-clock, measurable in the
``ablation_ddg_scheduling`` benchmark.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import networkx as nx

from repro.core.results import RunResult, StageResult
from repro.errors import ScheduleError
from repro.loopir.context import SequentialContext
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage
from repro.machine.timeline import Category
from repro.util.blocks import Block


def bottom_levels(graph: nx.DiGraph, n_iterations: int, work: list[float]) -> list[float]:
    """Longest work-weighted path from each iteration to any exit.

    Iteration order is reverse-topological for the forward-edge DDG, so a
    single backward pass suffices.
    """
    levels = [0.0] * n_iterations
    for i in range(n_iterations - 1, -1, -1):
        succ_max = 0.0
        if graph.has_node(i):
            for j in graph.successors(i):
                if not 0 <= j < n_iterations:
                    raise ScheduleError(f"edge target {j} outside iteration space")
                if j <= i:
                    raise ScheduleError(f"non-forward edge {i}->{j}")
                succ_max = max(succ_max, levels[j])
        levels[i] = work[i] + succ_max
    return levels


@dataclass(frozen=True)
class ListSchedule:
    """A dispatch order with per-iteration start times and the makespan."""

    n_iterations: int
    n_procs: int
    order: tuple[int, ...]          # dispatch order (dependence-safe)
    start_times: tuple[float, ...]  # virtual start per iteration
    makespan: float
    critical_path_work: float


def list_schedule(
    graph: nx.DiGraph,
    loop: SpeculativeLoop,
    n_procs: int,
    costs: CostModel | None = None,
) -> ListSchedule:
    """Build the critical-path list schedule for ``loop`` under its DDG."""
    costs = costs or CostModel()
    n = loop.n_iterations
    work = [loop.work_of(i) * costs.omega for i in range(n)]
    priority = bottom_levels(graph, n, work)

    preds: dict[int, list[int]] = {i: [] for i in range(n)}
    n_preds = [0] * n
    for src, dst in graph.edges:
        preds[dst].append(src)
        n_preds[dst] += 1

    finish = [0.0] * n
    start = [0.0] * n
    proc_free = [0.0] * n_procs
    remaining_preds = list(n_preds)
    # Ready heap keyed by (-priority, iteration) for deterministic ties.
    ready = [(-priority[i], i) for i in range(n) if n_preds[i] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    dispatch_sync = costs.sync / max(4, n_procs)  # per-dispatch handshake

    while ready:
        _, i = heapq.heappop(ready)
        proc = min(range(n_procs), key=lambda q: proc_free[q])
        earliest = max((finish[j] for j in preds[i]), default=0.0)
        begin = max(proc_free[proc], earliest) + dispatch_sync
        start[i] = begin
        finish[i] = begin + work[i]
        proc_free[proc] = finish[i]
        order.append(i)
        for j in (graph.successors(i) if graph.has_node(i) else ()):
            remaining_preds[j] -= 1
            if remaining_preds[j] == 0:
                heapq.heappush(ready, (-priority[j], j))

    if len(order) != n:
        raise ScheduleError(
            f"list scheduler dispatched {len(order)} of {n} iterations; "
            "the DDG has a cycle or disconnected constraint"
        )
    return ListSchedule(
        n_iterations=n,
        n_procs=n_procs,
        order=tuple(order),
        start_times=tuple(start),
        makespan=max(finish, default=0.0),
        critical_path_work=max(priority, default=0.0),
    )


def execute_list_schedule(
    loop: SpeculativeLoop,
    schedule: ListSchedule,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """Execute the loop in dispatch order; report the schedule's makespan.

    Dispatch order respects every DDG edge, so executing iterations in that
    order against shared memory reproduces the sequential state (verified
    by the test suite's oracle comparisons).
    """
    if schedule.n_iterations != loop.n_iterations:
        raise ScheduleError(
            f"schedule is for {schedule.n_iterations} iterations, loop has "
            f"{loop.n_iterations}"
        )
    machine = Machine(
        schedule.n_procs, costs=costs, memory=memory or loop.materialize()
    )
    ctx = SequentialContext(
        machine.memory,
        reductions=loop.reductions,
        inductions=loop.initial_inductions(),
    )
    omega = machine.costs.omega
    iter_times: dict[int, float] = {}
    sequential_work = 0.0
    record = machine.begin_stage()
    for i in schedule.order:
        ctx.iteration = i
        before = ctx.extra_work
        loop.body(ctx, i)
        if ctx.exited:
            raise ScheduleError(
                f"{loop.name}: premature exits need the blocked runner"
            )
        t = (loop.work_of(i) + (ctx.extra_work - before)) * omega
        iter_times[i] = t
        sequential_work += t
    # The timeline carries the modeled makespan: work span plus the
    # dispatch/dependence stalls folded into SYNC.
    work_span = sequential_work / max(1, schedule.n_procs)
    record.charge(-1, Category.WORK, min(schedule.makespan, work_span))
    record.charge(-1, Category.SYNC, max(0.0, schedule.makespan - work_span))

    stages = [
        StageResult(
            index=0,
            blocks=[Block(0, 0, loop.n_iterations)] if loop.n_iterations else [],
            failed=False,
            earliest_sink_pos=None,
            committed_iterations=loop.n_iterations,
            remaining_after=0,
            committed_work=sequential_work,
            n_arcs=0,
            committed_elements=0,
            restored_elements=0,
            redistributed_iterations=0,
            span=record.span(),
            breakdown=record.breakdown(),
        )
    ]
    return RunResult(
        loop_name=loop.name,
        strategy=f"list-sched(p={schedule.n_procs})",
        n_procs=schedule.n_procs,
        n_iterations=loop.n_iterations,
        stages=stages,
        timeline=machine.timeline,
        sequential_work=sequential_work,
        iteration_times=iter_times,
        induction_finals=ctx.induction_values(),
        memory=machine.memory,
    )
