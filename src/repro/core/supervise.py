"""Worker-pool supervision: crash/hang detection and bit-identical recovery.

The fork and shm backends run each stage's blocks on real OS processes, so
they inherit real OS failure modes the logical fault injector
(:mod:`repro.faults`) never produces: a worker SIGKILLed by the OOM
killer, wedged in uninterruptible sleep, or stopped by SIGSTOP.  Before
this layer existed, a dead worker raised a terminal
:class:`~repro.errors.BackendError` and a hung one blocked the parent
forever in ``conn.recv()``.

:class:`WorkerSupervisor` wraps every dispatch:

* **liveness-aware collection** -- replies are gathered with
  ``multiprocessing.connection.wait`` over each pending worker's pipe
  *and* process sentinel, under a deadline derived from a per-block time
  estimate (floored by ``RuntimeConfig.worker_timeout``), so death and
  hang are both detected without ever blocking indefinitely;
* **bit-identical re-dispatch** -- a lost worker is reaped (SIGKILL, which
  a stopped process cannot ignore), the backend rolls any shared state the
  dead worker dirtied back to its dispatch-time contents
  (``_recover_shared_state``), a replacement is forked from the parent's
  current (still pre-merge) state after an exponential backoff, and the
  lost blocks are re-sent.  Because backends merge deltas only after *all*
  replies arrive, the parent's memory, states, events and timeline are
  untouched mid-stage; the killed attempt is invisible and the replayed
  blocks produce exactly the outcome an undisturbed run would;
* **graceful degradation** -- when the respawn budget
  (``RuntimeConfig.max_worker_respawns``) is exhausted, or one block kills
  its worker repeatedly (a poison block), the supervisor halts the pool,
  restores shared state, and raises :class:`PoolDegradation`; the engine
  catches it, emits a ``BackendDegraded`` event and re-runs the same tasks
  on the next backend down the :data:`DEGRADATION_ORDER` chain
  (shm -> fork -> serial) for the remainder of the run.

Supervision outcomes deliberately stay **out** of the deterministic event
and metrics streams: a disturbed run must produce a bit-identical trace to
an undisturbed one (the golden acceptance bar).  Counters live on the
engine's :class:`SupervisionStats` (surfaced as ``RunResult.supervision``
and ``StageResult.redispatched_procs``), and kill/respawn/redispatch
timings are logged as ``supervise`` records through the unified oplog
(:mod:`repro.obs.oplog`; point ``REPRO_OPLOG`` -- or its deprecated
alias ``REPRO_SUPERVISE_LOG`` -- at a path; CI uploads it on chaos-job
failure).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing import connection

from repro.obs.oplog import get_oplog

#: Graceful fallback chain: the engine replaces a degraded backend with the
#: next entry (serial has no entry -- it cannot lose workers).  The threads
#: backend falls straight to serial: its failure modes are in-process, so
#: neither process backend would be any healthier after a degradation.
DEGRADATION_ORDER = {"shm": "fork", "fork": "serial", "threads": "serial"}

#: Exponential respawn backoff: ``_BACKOFF_BASE * 2**n`` seconds, capped.
_BACKOFF_BASE = 0.01
_BACKOFF_CAP = 0.5

#: Worker deaths tolerated per (stage, block position) before the block is
#: quarantined as poison and the pool degrades.
_MAX_BLOCK_DEATHS = 2

#: Grace period for reaping an already-SIGKILLed process.
_REAP_TIMEOUT = 5.0

#: Oplog severity per supervision event (default ``info``).
_SEVERITIES = {
    "worker-found-dead": "warn",
    "worker-died": "warn",
    "worker-overdue": "warn",
    "worker-wedged": "error",
    "pool-degraded": "error",
}


def log_supervision(
    backend_name: str,
    event: str,
    worker: int,
    pid: int | None,
    share: list,
    t0: float,
    extra: dict | None = None,
) -> None:
    """One supervision record through the unified oplog.

    Shared by the process (:class:`WorkerSupervisor`) and thread
    (:class:`repro.core.threads._ThreadSupervisor`) supervisors -- the
    two previously divergent ``REPRO_SUPERVISE_LOG`` writers.  The
    legacy field names (``event``/``backend``/``worker``/``pid``/
    ``stage``/``blocks``/``procs``/``t``, with ``t`` relative to the
    supervisor's creation) are preserved on top of the oplog envelope,
    so existing log consumers keep parsing.
    """
    fields = {
        "backend": backend_name,
        "worker": worker,
        "pid": pid,
        "stage": share[0].stage if share else None,
        "blocks": [task.pos for task in share],
        "procs": [task.block.proc for task in share],
        "t": round(time.monotonic() - t0, 6),
    }
    if extra:
        fields.update(extra)
    get_oplog().log(
        "supervise", event,
        severity=_SEVERITIES.get(event, "info"), **fields,
    )


@dataclass
class SupervisionStats:
    """Engine-lifetime counters of OS-level fault handling.

    Kept separate from the machine's metrics registry on purpose: these
    counters reflect host scheduling accidents, and folding them into the
    deterministic metrics/event streams would break the bit-identical
    trace guarantee supervised recovery is designed to preserve.
    """

    respawns: int = 0
    """Replacement workers forked (mid-stage and between-stage)."""

    redispatched_blocks: int = 0
    """Blocks re-sent after their original worker was lost."""

    kills: int = 0
    """Processes the supervisor SIGKILLed (overdue or wedged)."""

    overdue: int = 0
    """Workers that exceeded their dispatch deadline (hangs/stops)."""

    found_dead: int = 0
    """Workers found dead at dispatch time (died between stages)."""

    quarantined_blocks: int = 0
    """Blocks that killed their worker ``_MAX_BLOCK_DEATHS`` times."""

    degradations: list[dict] = field(default_factory=list)
    """One record per backend fallback: stage, from, to, reason."""

    stage_redispatched_procs: list[int] = field(default_factory=list)
    """Scratch: processors re-dispatched since the last stage drain."""

    @property
    def active(self) -> bool:
        """Whether any supervision action happened this run."""
        return bool(
            self.respawns or self.redispatched_blocks or self.kills
            or self.overdue or self.found_dead or self.quarantined_blocks
            or self.degradations
        )

    def take_stage_redispatched(self) -> list[int]:
        """Drain the per-stage redispatch scratch (engine calls this once
        per :class:`~repro.core.results.StageResult` construction)."""
        procs = sorted(set(self.stage_redispatched_procs))
        self.stage_redispatched_procs.clear()
        return procs

    def snapshot(self) -> dict:
        """Flat ``supervise.*`` counter dict for ``RunResult.supervision``."""
        return {
            "supervise.respawns": self.respawns,
            "supervise.redispatched_blocks": self.redispatched_blocks,
            "supervise.kills": self.kills,
            "supervise.overdue": self.overdue,
            "supervise.found_dead": self.found_dead,
            "supervise.quarantined_blocks": self.quarantined_blocks,
            "supervise.degradations": list(self.degradations),
        }


class PoolDegradation(Exception):
    """Internal control flow: this worker pool is beyond per-worker repair.

    Raised by the supervisor after it has halted the pool and restored
    shared state; the engine catches it and fails over to the next backend
    in :data:`DEGRADATION_ORDER`.  Never escapes the engine: if even
    serial were to fail the failure is a real error, and serial never
    raises this.
    """

    def __init__(
        self, backend: str, reason: str, *, stage: int | None = None,
        worker: int | None = None, pid: int | None = None,
        blocks: tuple[int, ...] = (),
    ) -> None:
        self.backend = backend
        self.reason = reason
        self.stage = stage
        self.worker = worker
        self.pid = pid
        self.blocks = list(blocks)
        detail = []
        if worker is not None:
            detail.append(f"worker {worker}")
        if pid is not None:
            detail.append(f"pid {pid}")
        if self.blocks:
            detail.append(f"blocks {self.blocks}")
        suffix = f" ({', '.join(detail)})" if detail else ""
        super().__init__(f"{backend} backend pool degraded: {reason}{suffix}")


class WorkerSupervisor:
    """Supervises one backend's worker pool across its lifetime.

    State machine per worker, per dispatch::

        healthy --reply--> done
        healthy --sentinel fires / EOF--> dead --respawn--> redispatched
        healthy --deadline passes--> overdue --SIGKILL--> dead --> ...
        dead, budget exhausted or poison block --> degraded (PoolDegradation)

    The respawn budget and poison-block counters span the backend
    instance's whole run (not one dispatch), so a flaky host cannot make
    the engine loop forever on respawns.
    """

    def __init__(self, backend) -> None:
        self.backend = backend
        eng = backend.eng
        config = getattr(eng, "config", None)
        self.timeout = float(getattr(config, "worker_timeout", 30.0))
        self.factor = float(getattr(config, "worker_timeout_factor", 8.0))
        self.max_respawns = int(getattr(config, "max_worker_respawns", 3))
        stats = getattr(eng, "supervision", None)
        self.stats = stats if stats is not None else SupervisionStats()
        self.chaos = getattr(eng, "os_chaos", None)
        self.respawns_used = 0
        self._block_deaths: dict[tuple[int, int], int] = {}
        self._per_block_est = 0.0
        self._sent: dict[int, float] = {}
        self._shares: list[list] = []
        self._t0 = time.monotonic()

    # -- dispatch/collect loop ---------------------------------------------------

    def run_shares(self, shares: list[list]) -> list:
        """Send one share per worker, survive losses, return all replies.

        Either returns a reply per share (the undisturbed protocol's
        result, possibly via replacement workers) or raises: a worker
        *exception* propagates as :class:`~repro.errors.BackendError`
        (deterministic bugs are not survivable faults), an unrecoverable
        pool raises :class:`PoolDegradation` after cleanup.
        """
        self._shares = shares
        replies: list = [None] * len(shares)
        pending: dict[int, float] = {}
        for k, share in enumerate(shares):
            self._dispatch(k, share, fresh=False, pending=pending)
        while pending:
            lost = self._collect(pending, replies)
            if lost:
                self._recover(lost, pending)
        # Nothing is in flight between stages; the resource sampler reads
        # ``_sent`` for its inflight gauge, so don't leave stale entries.
        self._sent.clear()
        return replies

    def _dispatch(self, k: int, share: list, fresh: bool, pending: dict) -> None:
        backend = self.backend
        process, _ = backend._workers[k]
        if not process.is_alive():
            # Died between stages (e.g. killed right after its last
            # reply): replace before dispatching.  The replacement forks
            # from the parent's current committed state, so it needs the
            # full-sync ``fresh`` dispatch.
            self.stats.found_dead += 1
            self._log("worker-found-dead", k, share)
            self._reap(k)
            self._respawn_slot(k, share)
            fresh = True
        try:
            backend._send_share(k, share, fresh)
        except (BrokenPipeError, OSError):
            # Lost between the liveness check and the send.
            self.stats.found_dead += 1
            self._log("worker-found-dead", k, share)
            self._reap(k)
            self._respawn_slot(k, share)
            backend._send_share(k, share, fresh=True)
        now = time.monotonic()
        self._sent[k] = now
        pending[k] = now + self._deadline_for(share)
        self._fire_chaos(k, share)

    def _collect(self, pending: dict, replies: list) -> list[int]:
        """Gather replies until every pending worker resolved; return the
        workers lost (dead or overdue) this round.

        Losses are only *returned* once nothing is left in flight: the
        recovery rollback (`_recover_shared_state`) is wholesale over the
        untested arrays, so it must not race a live worker's legal
        in-flight writes.  Live workers roll their own untested writes
        back before replying, so after the drain, shared memory equals the
        dispatch-time state plus only the dead workers' dirt.
        """
        backend = self.backend
        shares = self._shares
        lost: list[int] = []
        while pending:
            now = time.monotonic()
            timeout = max(0.0, min(pending.values()) - now)
            waitables: list = []
            owner: dict = {}
            for k in pending:
                process, conn = backend._workers[k]
                waitables.append(conn)
                owner[conn] = k
                waitables.append(process.sentinel)
                owner[process.sentinel] = k
            ready = connection.wait(waitables, timeout=timeout)
            progressed = False
            for obj in ready:
                k = owner[obj]
                if k not in pending:
                    continue  # worker resolved via its other waitable
                process, conn = backend._workers[k]
                dead = False
                if conn.poll(0):
                    # A reply (possibly fully buffered by a worker that
                    # died right after sending it) takes precedence over
                    # the death sentinel: the work is complete and valid.
                    try:
                        replies[k] = backend._recv_share(k, shares[k])
                    except (EOFError, OSError):
                        dead = True  # EOF or partial frame: no reply can come
                    else:
                        del pending[k]
                        progressed = True
                        self._note_duration(k, shares[k])
                        continue
                if dead or not process.is_alive():
                    del pending[k]
                    lost.append(k)
                    progressed = True
                    self._log("worker-died", k, shares[k])
                    self._reap(k)
            if not progressed:
                now = time.monotonic()
                for k in [k for k, dl in pending.items() if now >= dl]:
                    del pending[k]
                    lost.append(k)
                    self.stats.overdue += 1
                    self._log("worker-overdue", k, shares[k])
                    self._reap(k)
        return lost

    def _recover(self, lost: list[int], pending: dict) -> None:
        """Roll back, respawn and re-dispatch the lost workers' shares."""
        backend = self.backend
        shares = self._shares
        for k in lost:
            for task in shares[k]:
                key = (task.stage, task.pos)
                deaths = self._block_deaths.get(key, 0) + 1
                self._block_deaths[key] = deaths
                if deaths >= _MAX_BLOCK_DEATHS:
                    self.stats.quarantined_blocks += 1
                    self._fail_pool(PoolDegradation(
                        backend.name,
                        f"block at stage {task.stage} position {task.pos} "
                        f"killed its worker {deaths} times (poison block)",
                        stage=task.stage, worker=k,
                        blocks=tuple(t.pos for t in shares[k]),
                    ))
        # Dispatch-time rollback of anything the dead workers dirtied,
        # before any replacement (forked from current state) can see it.
        backend._recover_shared_state(
            [task.block.proc for k in lost for task in shares[k]]
        )
        for k in lost:
            self._respawn_slot(k, shares[k])
            self._dispatch(k, shares[k], fresh=True, pending=pending)
            self.stats.redispatched_blocks += len(shares[k])
            self.stats.stage_redispatched_procs.extend(
                task.block.proc for task in shares[k]
            )
            self._log("blocks-redispatched", k, shares[k])

    # -- per-worker actions ------------------------------------------------------

    def _reap(self, k: int) -> None:
        """Make worker slot ``k``'s process unconditionally gone.

        SIGKILL rather than SIGTERM: a SIGSTOPped process keeps SIGTERM
        pending forever, but SIGKILL acts on stopped processes too.
        """
        process, conn = self.backend._workers[k]
        if process.is_alive():
            process.kill()
            self.stats.kills += 1
        process.join(timeout=_REAP_TIMEOUT)
        try:
            conn.close()
        except OSError:  # pragma: no cover - close on a broken fd
            pass

    def _respawn_slot(self, k: int, share: list) -> None:
        backend = self.backend
        if self.respawns_used >= self.max_respawns:
            process, _ = backend._workers[k]
            self._fail_pool(PoolDegradation(
                backend.name,
                "worker respawn budget exhausted "
                f"(max_worker_respawns={self.max_respawns})",
                stage=share[0].stage if share else None, worker=k,
                pid=process.pid, blocks=tuple(t.pos for t in share),
            ))
        time.sleep(min(_BACKOFF_CAP, _BACKOFF_BASE * (2 ** self.respawns_used)))
        backend._workers[k] = backend._spawn_worker()
        self.respawns_used += 1
        self.stats.respawns += 1
        self._log("worker-respawned", k, share)

    def _fail_pool(self, exc: PoolDegradation) -> None:
        """Give up on this pool: halt every worker (they may still be
        writing shared buffers), roll shared state for *all* dispatched
        blocks back to dispatch-time contents (nothing was merged, so the
        whole stage re-runs on the fallback backend), and raise."""
        backend = self.backend
        backend._halt_workers()
        backend._recover_shared_state(
            [task.block.proc for share in self._shares for task in share]
        )
        self._log("pool-degraded", exc.worker if exc.worker is not None else -1,
                  [], extra={"reason": str(exc)})
        raise exc

    # -- deadlines and chaos -----------------------------------------------------

    def _deadline_for(self, share: list) -> float:
        """Seconds this share may stay in flight: the configured floor, or
        the adaptive estimate (observed per-block max x factor) when that
        is larger -- long blocks must not be misread as hangs."""
        return max(
            self.timeout,
            self.factor * self._per_block_est * max(1, len(share)),
        )

    def _note_duration(self, k: int, share: list) -> None:
        if share:
            dur = time.monotonic() - self._sent[k]
            self._per_block_est = max(self._per_block_est, dur / len(share))

    def _fire_chaos(self, k: int, share: list) -> None:
        if self.chaos is None or not share:
            return
        process, _ = self.backend._workers[k]
        for action in self.chaos.after_dispatch(share[0].stage, k, process):
            self._log(f"chaos-{action}", k, share)

    # -- operational log ---------------------------------------------------------

    def _log(self, event: str, k: int, share: list, extra: dict | None = None) -> None:
        workers = self.backend._workers or []
        pid = workers[k][0].pid if 0 <= k < len(workers) else None
        log_supervision(
            self.backend.name, event, k, pid, share, self._t0, extra
        )
