"""The Sliding Window (SW) strategy.

Instead of distributing the whole iteration space at once, the speculative
execution is strip-mined: fixed-size *super-iterations* (contiguous blocks
of ``b`` iterations) are assigned to processors circularly -- block ``j``
runs on processor ``j mod p`` -- and the R-LRPD test is applied to each
window of ``p`` consecutive blocks.  After the analysis phase the commit
point advances past every block before the earliest dependence sink; failed
blocks are re-executed *on their originally assigned processor* (locality),
joined by the next new blocks to refill the window.

Trade-offs faithfully modeled (Section 2): one barrier and one analysis
pass per strip (a fully parallel loop pays ``n / (p*b)`` synchronizations
instead of one), against far fewer re-executed iterations when dependences
are present; elements reused in every iteration are re-analyzed in every
window.

With ``adaptive_window`` the super-iteration size is doubled after a failed
window (many close dependences: bigger blocks internalize short-distance
arcs) -- the paper's history-based block-size adjustment.
"""

from __future__ import annotations

from repro.config import RuntimeConfig, Strategy
from repro.core.analysis import analyze_stage
from repro.core.commit import commit_states, reinit_states
from repro.core.executor import execute_block, make_processor_state
from repro.core.results import RunResult, StageResult
from repro.core.stage import (
    charge_analysis,
    charge_checkpoint_begin,
    committed_work,
    perform_restore,
)
from repro.errors import ConfigurationError, NoProgressError, SpeculationError
from repro.loopir.loop import SpeculativeLoop
from repro.machine.checkpoint import CheckpointManager
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage
from repro.util.blocks import Block


def default_window(n_procs: int) -> int:
    """Default window: two super-iterations of one iteration per processor
    would be degenerate; use 2 iterations per processor."""
    return 2 * n_procs


def run_sliding_window(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """Run one instantiation of ``loop`` under the sliding-window R-LRPD."""
    config = config or RuntimeConfig.sw()
    if config.strategy is not Strategy.SLIDING_WINDOW:
        raise ConfigurationError(
            f"run_sliding_window got strategy {config.strategy}"
        )
    if loop.inductions:
        raise ConfigurationError(
            f"loop {loop.name!r} declares induction variables; use "
            "repro.core.runner.parallelize"
        )

    machine = Machine(n_procs, costs=costs, memory=memory or loop.materialize())
    states = {p: make_processor_state(machine, loop, p) for p in range(n_procs)}
    untested = loop.untested_names
    ckpt = (
        CheckpointManager(machine.memory, untested, config.on_demand_checkpoint)
        if untested
        else None
    )

    n = loop.n_iterations
    window = config.window_size or default_window(n_procs)
    b = max(1, window // n_procs)  # super-iteration size

    committed_upto = 0
    stage_results: list[StageResult] = []
    sequential_work = 0.0
    final_iter_times: dict[int, float] = {}
    stage_idx = 0
    # Block grid anchor: blocks are [anchor + j*b, anchor + (j+1)*b).  The
    # anchor moves only when the adaptive policy re-grids after a failure.
    anchor = 0

    def block_at(j: int) -> Block:
        start = min(anchor + j * b, n)
        stop = min(start + b, n)
        return Block(j % n_procs, start, stop)

    while committed_upto < n:
        if stage_idx >= config.max_stages:
            raise SpeculationError(
                f"{loop.name}: exceeded max_stages={config.max_stages}"
            )
        j0 = (committed_upto - anchor) // b
        window_blocks = []
        for j in range(j0, j0 + n_procs):
            blk = block_at(j)
            if len(blk) == 0:
                break
            window_blocks.append(blk)
        if not window_blocks:
            raise SpeculationError(f"{loop.name}: empty window with work left")

        record = machine.begin_stage()
        charge_checkpoint_begin(machine, ckpt)
        reduction_names = frozenset(loop.reductions)
        for block in window_blocks:
            if config.pre_initialize:
                states[block.proc].preload(machine, skip=reduction_names)
            ctx = execute_block(machine, loop, states[block.proc], block, ckpt)
            if ctx.exit_iteration is not None:
                raise ConfigurationError(
                    f"{loop.name}: premature exits need the blocked runner"
                )
        machine.barrier()

        groups = [(blk.proc, states[blk.proc].shadows) for blk in window_blocks]
        analysis = analyze_stage(groups)
        charge_analysis(machine, analysis, [blk.proc for blk in window_blocks])

        f_pos = analysis.earliest_sink_pos
        committing = window_blocks if f_pos is None else window_blocks[:f_pos]
        failing = [] if f_pos is None else window_blocks[f_pos:]
        if not committing:
            raise NoProgressError(
                f"{loop.name}: window stage {stage_idx} committed nothing"
            )

        committed_elements = commit_states(
            machine, loop, [states[blk.proc] for blk in committing]
        )
        stage_work = committed_work(states, committing)
        sequential_work += stage_work
        for block in committing:
            times = states[block.proc].iter_times
            for i in block.iterations():
                final_iter_times[i] = times[i]
        restored = perform_restore(machine, ckpt, [blk.proc for blk in failing])
        reinit_states(machine, [states[blk.proc] for blk in failing])
        for block in committing:
            states[block.proc].reset()

        committed_upto = committing[-1].stop
        stage_results.append(
            StageResult(
                index=stage_idx,
                blocks=list(window_blocks),
                failed=f_pos is not None,
                earliest_sink_pos=f_pos,
                committed_iterations=sum(len(blk) for blk in committing),
                remaining_after=n - committed_upto,
                committed_work=stage_work,
                n_arcs=len(analysis.arcs),
                committed_elements=committed_elements,
                restored_elements=restored,
                redistributed_iterations=0,
                span=record.span(),
                breakdown=record.breakdown(),
            )
        )
        stage_idx += 1

        if f_pos is not None and config.adaptive_window:
            # Many close dependences: grow the super-iteration so short
            # arcs fall inside one block.  Re-grid from the commit point.
            b = min(b * 2, max(1, (n - committed_upto + n_procs - 1) // n_procs or 1))
            anchor = committed_upto

    return RunResult(
        loop_name=loop.name,
        strategy=config.label() if config.window_size else f"SW(w={window})",
        n_procs=n_procs,
        n_iterations=n,
        stages=stage_results,
        timeline=machine.timeline,
        sequential_work=sequential_work,
        iteration_times=final_iter_times,
        memory=machine.memory,
    )
