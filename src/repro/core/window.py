"""The Sliding Window (SW) strategy.

Instead of distributing the whole iteration space at once, the speculative
execution is strip-mined: fixed-size *super-iterations* (contiguous blocks
of ``b`` iterations) are assigned to processors circularly -- block ``j``
runs on processor ``j mod p`` -- and the R-LRPD test is applied to each
window of ``p`` consecutive blocks.  After the analysis phase the commit
point advances past every block before the earliest dependence sink; failed
blocks are re-executed *on their originally assigned processor* (locality),
joined by the next new blocks to refill the window.

Trade-offs faithfully modeled (Section 2): one barrier and one analysis
pass per strip (a fully parallel loop pays ``n / (p*b)`` synchronizations
instead of one), against far fewer re-executed iterations when dependences
are present; elements reused in every iteration are re-analyzed in every
window.

With ``adaptive_window`` the super-iteration size is doubled after a failed
window (many close dependences: bigger blocks internalize short-distance
arcs) -- the paper's history-based block-size adjustment.
"""

from __future__ import annotations

from repro.config import RuntimeConfig, Strategy
from repro.core.analysis import analyze_stage
from repro.core.commit import commit_states, reinit_states
from repro.core.executor import execute_block, make_processor_state
from repro.core.results import RunResult, StageResult
from repro.core.stage import (
    charge_analysis,
    charge_checkpoint_begin,
    charge_checkpoint_fault_recovery,
    committed_work,
    perform_restore,
)
from repro.errors import (
    ConfigurationError,
    FaultError,
    NoProgressError,
    SpeculationError,
)
from repro.faults.injector import FaultInjector
from repro.faults.selfcheck import UntestedAccessLog, check_final_state
from repro.loopir.loop import SpeculativeLoop
from repro.machine.checkpoint import CheckpointManager
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.memory import MemoryImage
from repro.util.blocks import Block


def default_window(n_procs: int) -> int:
    """Default window: two super-iterations of one iteration per processor
    would be degenerate; use 2 iterations per processor."""
    return 2 * n_procs


def run_sliding_window(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """Run one instantiation of ``loop`` under the sliding-window R-LRPD."""
    config = config or RuntimeConfig.sw()
    if config.strategy is not Strategy.SLIDING_WINDOW:
        raise ConfigurationError(
            f"run_sliding_window got strategy {config.strategy}"
        )
    if loop.inductions:
        raise ConfigurationError(
            f"loop {loop.name!r} declares induction variables; use "
            "repro.core.runner.parallelize"
        )

    machine = Machine(n_procs, costs=costs, memory=memory or loop.materialize())
    states = {p: make_processor_state(machine, loop, p) for p in range(n_procs)}
    untested = loop.untested_names
    ckpt = (
        CheckpointManager(machine.memory, untested, config.on_demand_checkpoint)
        if untested
        else None
    )

    injector = FaultInjector(config.fault_plan) if config.fault_plan else None
    untested_log = (
        UntestedAccessLog() if (config.self_check and untested) else None
    )
    initial_state = machine.memory.snapshot() if config.self_check else None

    n = loop.n_iterations
    window = config.window_size or default_window(n_procs)
    b = max(1, window // n_procs)  # super-iteration size

    alive = list(range(n_procs))
    committed_upto = 0
    stage_results: list[StageResult] = []
    sequential_work = 0.0
    final_iter_times: dict[int, float] = {}
    stage_idx = 0
    retries = 0
    degraded_stages = 0
    zero_commit_streak = 0
    # Block grid anchor: blocks are [anchor + j*b, anchor + (j+1)*b).  The
    # anchor moves only when the adaptive policy re-grids after a failure.
    anchor = 0

    def block_at(j: int) -> Block:
        # Circular assignment over the *surviving* processors: after a
        # permanent fail-stop the rotation simply skips the dead slots.
        start = min(anchor + j * b, n)
        stop = min(start + b, n)
        return Block(alive[j % len(alive)], start, stop)

    while committed_upto < n:
        if stage_idx >= config.max_stages:
            raise SpeculationError(
                f"{loop.name}: exceeded max_stages={config.max_stages}"
            )
        degraded = len(alive) < n_procs
        if degraded:
            degraded_stages += 1
        j0 = (committed_upto - anchor) // b
        window_blocks = []
        for j in range(j0, j0 + len(alive)):
            blk = block_at(j)
            if len(blk) == 0:
                break
            window_blocks.append(blk)
        if not window_blocks:
            raise SpeculationError(f"{loop.name}: empty window with work left")

        record = machine.begin_stage()
        charge_checkpoint_begin(machine, ckpt, injector, stage_idx)
        if untested_log is not None:
            untested_log.reset()
        faulted: dict[int, str] = {}  # window position -> fault class
        reduction_names = frozenset(loop.reductions)
        for pos, block in enumerate(window_blocks):
            if config.pre_initialize:
                states[block.proc].preload(machine, skip=reduction_names)
            ctx = execute_block(
                machine, loop, states[block.proc], block, ckpt,
                injector=injector, stage=stage_idx, untested_log=untested_log,
            )
            if ctx.fault is not None:
                faulted[pos] = ctx.fault
                if ctx.fault_permanent and len(alive) > 1:
                    alive.remove(block.proc)
                    injector.mark_dead(block.proc)
            elif (
                injector is not None
                and injector.corrupt(stage_idx, block.proc, states[block.proc])
                is not None
            ):
                faulted[pos] = "corrupt-write"
            elif ctx.exit_iteration is not None:
                raise ConfigurationError(
                    f"{loop.name}: premature exits need the blocked runner"
                )
        machine.barrier()
        charge_checkpoint_fault_recovery(machine, ckpt, injector, stage_idx)

        groups = [(blk.proc, states[blk.proc].shadows) for blk in window_blocks]
        analysis = analyze_stage(groups)
        charge_analysis(machine, analysis, [blk.proc for blk in window_blocks])
        if untested_log is not None:
            untested_log.verify(loop.name, stage_idx)

        f_pos = analysis.earliest_sink_pos
        fault_pos = min(faulted) if faulted else None
        if fault_pos is not None and (f_pos is None or fault_pos < f_pos):
            f_pos = fault_pos
            retries += 1
        faulted_procs = sorted(window_blocks[pos].proc for pos in faulted)
        committing = window_blocks if f_pos is None else window_blocks[:f_pos]
        failing = [] if f_pos is None else window_blocks[f_pos:]
        if not committing:
            # The window's first block cannot be an analysis sink, so a
            # zero-commit window is fault-caused; roll back and retry (the
            # next stage recomputes the same window from the commit point).
            if fault_pos != 0:
                raise NoProgressError(
                    f"{loop.name}: window stage {stage_idx} committed nothing"
                )
            zero_commit_streak += 1
            if zero_commit_streak > config.max_fault_retries:
                raise FaultError(
                    f"gave up after {zero_commit_streak} consecutive "
                    "zero-progress windows wiped out by injected faults "
                    f"(max_fault_retries={config.max_fault_retries})",
                    loop=loop.name,
                    stage=stage_idx,
                    proc=window_blocks[0].proc,
                )
            restored = perform_restore(
                machine, ckpt, [blk.proc for blk in failing]
            )
            reinit_states(machine, [states[blk.proc] for blk in failing])
            stage_results.append(
                StageResult(
                    index=stage_idx,
                    blocks=list(window_blocks),
                    failed=True,
                    earliest_sink_pos=f_pos,
                    committed_iterations=0,
                    remaining_after=n - committed_upto,
                    committed_work=0.0,
                    n_arcs=len(analysis.arcs),
                    committed_elements=0,
                    restored_elements=restored,
                    redistributed_iterations=0,
                    span=record.span(),
                    breakdown=record.breakdown(),
                    faulted_procs=faulted_procs,
                    degraded=degraded,
                )
            )
            stage_idx += 1
            continue
        zero_commit_streak = 0

        committed_elements = commit_states(
            machine, loop, [states[blk.proc] for blk in committing]
        )
        stage_work = committed_work(states, committing)
        sequential_work += stage_work
        for block in committing:
            times = states[block.proc].iter_times
            for i in block.iterations():
                final_iter_times[i] = times[i]
        restored = perform_restore(machine, ckpt, [blk.proc for blk in failing])
        reinit_states(machine, [states[blk.proc] for blk in failing])
        for block in committing:
            states[block.proc].reset()

        committed_upto = committing[-1].stop
        stage_results.append(
            StageResult(
                index=stage_idx,
                blocks=list(window_blocks),
                failed=f_pos is not None,
                earliest_sink_pos=f_pos,
                committed_iterations=sum(len(blk) for blk in committing),
                remaining_after=n - committed_upto,
                committed_work=stage_work,
                n_arcs=len(analysis.arcs),
                committed_elements=committed_elements,
                restored_elements=restored,
                redistributed_iterations=0,
                span=record.span(),
                breakdown=record.breakdown(),
                faulted_procs=faulted_procs,
                degraded=degraded,
            )
        )
        stage_idx += 1

        if f_pos is not None and config.adaptive_window:
            # Many close dependences: grow the super-iteration so short
            # arcs fall inside one block.  Re-grid from the commit point.
            p_now = len(alive)
            b = min(b * 2, max(1, (n - committed_upto + p_now - 1) // p_now or 1))
            anchor = committed_upto

    if config.self_check:
        check_final_state(loop, machine.memory, initial_state)
    result = RunResult(
        loop_name=loop.name,
        strategy=config.label() if config.window_size else f"SW(w={window})",
        n_procs=n_procs,
        n_iterations=n,
        stages=stage_results,
        timeline=machine.timeline,
        sequential_work=sequential_work,
        iteration_times=final_iter_times,
        memory=machine.memory,
    )
    if injector is not None:
        result.retries = retries
        result.faults_survived = injector.total_injected
        result.fault_counts = injector.counts()
        result.degraded_stages = degraded_stages
        result.dead_procs = sorted(injector.dead)
    return result
