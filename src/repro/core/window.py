"""The Sliding Window (SW) strategy.

Instead of distributing the whole iteration space at once, the speculative
execution is strip-mined: fixed-size *super-iterations* (contiguous blocks
of ``b`` iterations) are assigned to processors circularly -- block ``j``
runs on processor ``j mod p`` -- and the R-LRPD test is applied to each
window of ``p`` consecutive blocks.  After the analysis phase the commit
point advances past every block before the earliest dependence sink; failed
blocks are re-executed *on their originally assigned processor* (locality),
joined by the next new blocks to refill the window.

Trade-offs faithfully modeled (Section 2): one barrier and one analysis
pass per strip (a fully parallel loop pays ``n / (p*b)`` synchronizations
instead of one), against far fewer re-executed iterations when dependences
are present; elements reused in every iteration are re-analyzed in every
window.

With ``adaptive_window`` the super-iteration size is doubled after a failed
window (many close dependences: bigger blocks internalize short-distance
arcs) -- the paper's history-based block-size adjustment.

The stage lifecycle itself runs in :class:`~repro.core.engine.StageEngine`;
this module contributes only the circular window policy, registered as
``sw``.
"""

from __future__ import annotations

from repro.config import RuntimeConfig, Strategy
from repro.core.engine import StageEngine, register_strategy
from repro.core.engine import Strategy as EngineStrategy
from repro.core.results import RunResult
from repro.errors import ConfigurationError, SpeculationError
from repro.loopir.loop import SpeculativeLoop
from repro.machine.costs import CostModel
from repro.machine.memory import MemoryImage
from repro.util.blocks import Block


def default_window(n_procs: int) -> int:
    """Default window: two super-iterations of one iteration per processor
    would be degenerate; use 2 iterations per processor."""
    return 2 * n_procs


@register_strategy
class SlidingWindow(EngineStrategy):
    """Circular super-iteration assignment with in-place re-execution."""

    name = "sw"
    zero_noun = "windows"

    def __init__(self) -> None:
        self.window = 0
        self.b = 1  # super-iteration size
        # Block grid anchor: blocks are [anchor + j*b, anchor + (j+1)*b).
        # The anchor moves only when the adaptive policy re-grids after a
        # failure.
        self.anchor = 0

    @classmethod
    def default_config(cls, **overrides) -> RuntimeConfig:
        return RuntimeConfig.sw(**overrides)

    def validate(self, loop: SpeculativeLoop, config: RuntimeConfig) -> None:
        if config.strategy is not Strategy.SLIDING_WINDOW:
            raise ConfigurationError(
                f"run_sliding_window got strategy {config.strategy}"
            )
        if loop.inductions:
            raise ConfigurationError(
                f"loop {loop.name!r} declares induction variables; use "
                "repro.core.runner.parallelize"
            )

    def setup(self, eng: StageEngine) -> None:
        super().setup(eng)
        self.window = eng.config.window_size or default_window(eng.n_procs)
        self.b = max(1, self.window // eng.n_procs)

    def run_label(self, eng: StageEngine) -> str:
        if eng.config.window_size:
            return eng.config.label()
        return f"SW(w={self.window})"

    def _block_at(self, eng: StageEngine, j: int) -> Block:
        # Circular assignment over the *surviving* processors: after a
        # permanent fail-stop the rotation simply skips the dead slots.
        start = min(self.anchor + j * self.b, eng.n)
        stop = min(start + self.b, eng.n)
        return Block(eng.alive[j % len(eng.alive)], start, stop)

    def schedule(self, eng: StageEngine) -> list[Block]:
        j0 = (eng.committed_upto - self.anchor) // self.b
        window_blocks = []
        for j in range(j0, j0 + len(eng.alive)):
            blk = self._block_at(eng, j)
            if len(blk) == 0:
                break
            window_blocks.append(blk)
        if not window_blocks:
            raise SpeculationError(f"{eng.loop.name}: empty window with work left")
        return window_blocks

    def zero_commit_message(self, eng: StageEngine, f_pos: int | None) -> str:
        return f"{eng.loop.name}: window stage {eng.stage_idx} committed nothing"

    def after_stage(self, eng, committing, failing, f_pos) -> None:
        if f_pos is not None and eng.config.adaptive_window:
            # Many close dependences: grow the super-iteration so short
            # arcs fall inside one block.  Re-grid from the commit point.
            p_now = len(eng.alive)
            self.b = min(
                self.b * 2,
                max(1, (eng.n - eng.committed_upto + p_now - 1) // p_now or 1),
            )
            self.anchor = eng.committed_upto


def run_sliding_window(
    loop: SpeculativeLoop,
    n_procs: int,
    config: RuntimeConfig | None = None,
    costs: CostModel | None = None,
    memory: MemoryImage | None = None,
) -> RunResult:
    """Run one instantiation of ``loop`` under the sliding-window R-LRPD."""
    config = config or RuntimeConfig.sw()
    return StageEngine(
        loop, n_procs, SlidingWindow(), config, costs=costs, memory=memory,
    ).run()
